"""Set-associative cache model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.memory import Cache


def _cache(size=1024, ways=2, line=64, latency=3):
    return Cache("T", size, ways, line, latency)


class TestBasics:
    def test_cold_miss_then_hit(self):
        c = _cache()
        assert not c.lookup(0x100)
        c.fill(0x100)
        assert c.lookup(0x100)

    def test_same_line_shares(self):
        c = _cache(line=64)
        c.fill(0x100)
        assert c.lookup(0x100 + 63)
        assert not c.lookup(0x100 + 64)

    def test_stats(self):
        c = _cache()
        c.lookup(0)
        c.fill(0)
        c.lookup(0)
        assert c.stats.accesses == 2
        assert c.stats.hits == 1
        assert c.stats.misses == 1
        assert c.stats.hit_rate == 0.5

    def test_contains_has_no_side_effects(self):
        c = _cache()
        c.fill(0)
        before = c.stats.accesses
        assert c.contains(0)
        assert c.stats.accesses == before

    def test_invalidate(self):
        c = _cache()
        c.fill(0)
        c.invalidate(0)
        assert not c.contains(0)

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            Cache("bad", 1024, 2, 100, 1)  # non-power-of-two line
        with pytest.raises(ValueError):
            Cache("bad", 64, 4, 64, 1)  # zero sets


class TestReplacement:
    def test_lru_evicts_least_recent(self):
        # 2-way, line 64, size 128 -> 1 set
        c = _cache(size=128, ways=2, line=64)
        c.fill(0 * 64)
        c.fill(1 * 64)
        c.lookup(0)           # touch line 0 -> MRU
        c.fill(2 * 64)        # evicts line 1
        assert c.contains(0)
        assert not c.contains(64)
        assert c.contains(128)
        assert c.stats.evictions == 1

    def test_dirty_eviction_reports_writeback(self):
        c = _cache(size=128, ways=1, line=64)
        c.fill(0, dirty=True)
        victim = c.fill(64)  # wait: different set? size128/ways1/line64 -> 2 sets
        assert victim is None  # maps to the other set
        victim = c.fill(128)  # same set as 0
        assert victim == 0
        assert c.stats.writebacks == 1

    def test_write_marks_dirty(self):
        c = _cache(size=64, ways=1, line=64)
        c.fill(0)
        c.lookup(0, is_write=True)
        assert c.fill(64) == 0  # writeback of the dirtied line

    def test_clean_eviction_no_writeback(self):
        c = _cache(size=64, ways=1, line=64)
        c.fill(0)
        assert c.fill(64) is None
        assert c.stats.writebacks == 0

    def test_refill_existing_keeps_one_copy(self):
        c = _cache()
        c.fill(0)
        c.fill(0)
        assert c.resident_blocks == 1


class TestPrefetchTagging:
    def test_prefetch_hit_counted_once(self):
        c = _cache()
        c.fill(0, prefetched=True)
        c.lookup(0)
        c.lookup(0)
        assert c.stats.prefetch_fills == 1
        assert c.stats.prefetch_hits == 1


@settings(max_examples=30, deadline=None)
@given(addresses=st.lists(st.integers(min_value=0, max_value=1 << 14), min_size=1, max_size=200))
def test_occupancy_never_exceeds_capacity(addresses):
    """Property: resident blocks never exceed sets x ways, and a just-filled
    block is always resident."""
    c = _cache(size=512, ways=2, line=64)  # 4 sets x 2 ways = 8 blocks
    for addr in addresses:
        if not c.lookup(addr):
            c.fill(addr)
        assert c.contains(addr)
        assert c.resident_blocks <= 8


@settings(max_examples=20, deadline=None)
@given(addresses=st.lists(st.integers(min_value=0, max_value=1 << 12), min_size=1, max_size=100))
def test_stats_account_every_access(addresses):
    c = _cache()
    for addr in addresses:
        c.lookup(addr) or c.fill(addr)
    assert c.stats.hits + c.stats.misses == c.stats.accesses == len(addresses)
