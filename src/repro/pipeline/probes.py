"""The probe layer: typed pipeline events, zero-cost when off.

Stages emit events at well-defined points; probes subscribe by
overriding handlers on :class:`Probe`.  The dispatch discipline keeps an
unprobed core paying nothing on the hot path:

* with no probe registered, ``state.probes is None`` and every emission
  site is a single ``is not None`` test;
* with probes registered, :class:`ProbeManager` precomputes one tuple of
  bound handlers *per event*, containing only probes that actually
  override that handler — an event nobody listens to costs an empty
  tuple check.

Probe event table (see DESIGN.md, "Pipeline architecture"):

=================  ============================================  =========================
event              emitted                                       payload
=================  ============================================  =========================
phase              start of each per-cycle phase                 phase name, cycle
fetch              instruction entered the fetch queue           FetchedInstr, cycle
rename_stall       rename blocked this cycle                     cause, cycle
rename_sources     after SRT source lookup, before allocation    ROBEntry, cycle
allocate           after destination allocation                  ROBEntry, cycle
rename             instruction fully renamed/dispatched          ROBEntry, cycle
issue              selected, before the scheme's issue hook      ROBEntry, cycle
writeback          completion, before wakeup                     ROBEntry, cycle
precommit          precommit pointer passed the entry            ROBEntry, cycle
commit             retired, after the scheme's commit hook       ROBEntry, cycle
flush              pipeline flush, before scheme reclamation     entries, kind, cycle
early_release      scheme freed a register before commit         RegClass, ptag, cycle
claim              ATR claimed a previous mapping                RegClass, ptag, cycle
cycle_end          all phases of the cycle ran                   cycle
=================  ============================================  =========================

``rename_stall`` causes: ``empty``, ``rob``, ``rs``, ``lq``, ``sq``,
``freelist``.  ``flush`` kinds: ``branch``, ``interrupt``.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

#: Every probe event, in rough pipeline order.  ``ProbeManager`` exposes
#: one attribute per entry holding the tuple of subscribed handlers.
PROBE_EVENTS = (
    "phase",
    "fetch",
    "rename_stall",
    "rename_sources",
    "allocate",
    "rename",
    "issue",
    "writeback",
    "precommit",
    "commit",
    "flush",
    "early_release",
    "claim",
    "cycle_end",
)

#: The documented per-cycle phase order (oldest work first); the
#: ``phase`` event fires once per entry per cycle, in this order.
PHASE_ORDER = (
    "scheme_tick",
    "execute",
    "precommit",
    "commit",
    "issue",
    "rename",
    "fetch",
)


class Probe:
    """Subscriber base: override the handlers you care about.

    Handlers left untouched are detected by the manager and excluded
    from dispatch, so a probe pays only for the events it observes.
    """

    def on_phase(self, name: str, cycle: int) -> None:
        pass

    def on_fetch(self, fetched, cycle: int) -> None:
        pass

    def on_rename_stall(self, cause: str, cycle: int) -> None:
        pass

    def on_rename_sources(self, entry, cycle: int) -> None:
        pass

    def on_allocate(self, entry, cycle: int) -> None:
        pass

    def on_rename(self, entry, cycle: int) -> None:
        pass

    def on_issue(self, entry, cycle: int) -> None:
        pass

    def on_writeback(self, entry, cycle: int) -> None:
        pass

    def on_precommit(self, entry, cycle: int) -> None:
        pass

    def on_commit(self, entry, cycle: int) -> None:
        pass

    def on_flush(self, flushed, kind: str, cycle: int) -> None:
        pass

    def on_early_release(self, file_cls, ptag: int, cycle: int) -> None:
        pass

    def on_claim(self, file_cls, ptag: int, cycle: int) -> None:
        pass

    def on_cycle_end(self, cycle: int) -> None:
        pass


class ProbeManager:
    """Holds the registered probes and the per-event dispatch tuples."""

    __slots__ = PROBE_EVENTS + ("probes",)

    def __init__(self):
        self.probes: List[Probe] = []
        for event in PROBE_EVENTS:
            setattr(self, event, ())

    def add(self, probe: Probe) -> None:
        self.probes.append(probe)
        self._rebuild()

    def remove(self, probe: Probe) -> None:
        self.probes.remove(probe)
        self._rebuild()

    def _rebuild(self) -> None:
        for event in PROBE_EVENTS:
            name = "on_" + event
            base = getattr(Probe, name)
            handlers: Tuple = tuple(
                getattr(probe, name) for probe in self.probes
                if getattr(type(probe), name, base) is not base
            )
            setattr(self, event, handlers)

    def find(self, cls) -> Iterator[Probe]:
        """Registered probes that are instances of *cls*."""
        return (probe for probe in self.probes if isinstance(probe, cls))

    def __iter__(self) -> Iterator[Probe]:
        return iter(self.probes)

    def __len__(self) -> int:
        return len(self.probes)


class RegisterEventProbe(Probe):
    """Adapter feeding a :class:`~repro.pipeline.stats.RegisterEventLog`
    from probe events (replaces the core's hard-wired log calls)."""

    def __init__(self, log):
        self.log = log

    def on_allocate(self, entry, cycle: int) -> None:
        log = self.log
        trace_seq = entry.dyn.trace_seq
        wrong_path = entry.wrong_path
        for record in entry.dests:
            log.on_allocate(record.file, record.new_ptag, trace_seq, cycle,
                            wrong_path)
            log.on_redefine(record.file, record.prev_ptag, entry, cycle)

    def on_issue(self, entry, cycle: int) -> None:
        if entry.wrong_path:
            return
        log = self.log
        for file_cls, _slot, ptag in entry.src_ptags:
            log.on_consume(file_cls, ptag, cycle)

    def on_precommit(self, entry, cycle: int) -> None:
        self.log.on_redefiner_precommit(entry, cycle)

    def on_commit(self, entry, cycle: int) -> None:
        self.log.on_redefiner_commit(entry, cycle)

    def on_flush(self, flushed, kind: str, cycle: int) -> None:
        log = self.log
        for entry in flushed:
            log.on_redefiner_flush(entry)

    def on_early_release(self, file_cls, ptag: int, cycle: int) -> None:
        self.log.on_early_release(file_cls, ptag, cycle)


class RecordingProbe(Probe):
    """Records every event as ``(event, cycle, detail)`` triples — the
    reference subscriber for stage-order and wiring tests."""

    def __init__(self):
        self.events: List[tuple] = []

    def on_phase(self, name, cycle):
        self.events.append(("phase", cycle, name))

    def on_fetch(self, fetched, cycle):
        self.events.append(("fetch", cycle, fetched.dyn.seq))

    def on_rename_stall(self, cause, cycle):
        self.events.append(("rename_stall", cycle, cause))

    def on_rename_sources(self, entry, cycle):
        self.events.append(("rename_sources", cycle, entry.seq))

    def on_allocate(self, entry, cycle):
        self.events.append(("allocate", cycle, entry.seq))

    def on_rename(self, entry, cycle):
        self.events.append(("rename", cycle, entry.seq))

    def on_issue(self, entry, cycle):
        self.events.append(("issue", cycle, entry.seq))

    def on_writeback(self, entry, cycle):
        self.events.append(("writeback", cycle, entry.seq))

    def on_precommit(self, entry, cycle):
        self.events.append(("precommit", cycle, entry.seq))

    def on_commit(self, entry, cycle):
        self.events.append(("commit", cycle, entry.seq))

    def on_flush(self, flushed, kind, cycle):
        self.events.append(("flush", cycle, (kind, len(flushed))))

    def on_early_release(self, file_cls, ptag, cycle):
        self.events.append(("early_release", cycle, (file_cls.value, ptag)))

    def on_claim(self, file_cls, ptag, cycle):
        self.events.append(("claim", cycle, (file_cls.value, ptag)))

    def on_cycle_end(self, cycle):
        self.events.append(("cycle_end", cycle, None))

    def of_kind(self, event: str) -> List[tuple]:
        return [e for e in self.events if e[0] == event]
