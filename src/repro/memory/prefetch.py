"""Hardware prefetchers: next-line (spatial) and stride/stream.

The paper's configuration lists "Stream, Spatial" data prefetchers; both
are modeled here and trained on L1D accesses.  Prefetches are issued into
the hierarchy asynchronously (they fill caches but nobody waits on them).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List


class NextLinePrefetcher:
    """Spatial prefetcher: on access to block B, prefetch B+1..B+degree."""

    def __init__(self, line_bytes: int = 64, degree: int = 1):
        self.line_bytes = line_bytes
        self.degree = degree
        self.issued = 0

    def observe(self, addr: int, pc: int) -> List[int]:
        base = (addr // self.line_bytes) * self.line_bytes
        out = [base + i * self.line_bytes for i in range(1, self.degree + 1)]
        self.issued += len(out)
        return out


@dataclass
class _StreamEntry:
    pc: int = -1
    last_addr: int = 0
    stride: int = 0
    confidence: int = 0


class StridePrefetcher:
    """Classic PC-indexed stride prefetcher (stream detector).

    Each entry tracks the last address and stride per load PC; after
    ``threshold`` consecutive confirmations it prefetches ``degree``
    strides ahead.
    """

    def __init__(self, entries: int = 256, threshold: int = 2, degree: int = 4):
        self.entries = entries
        self.threshold = threshold
        self.degree = degree
        self.table = [_StreamEntry() for _ in range(entries)]
        self.issued = 0

    def observe(self, addr: int, pc: int) -> List[int]:
        entry = self.table[pc % self.entries]
        prefetches: List[int] = []
        if entry.pc != pc:
            entry.pc = pc
            entry.last_addr = addr
            entry.stride = 0
            entry.confidence = 0
            return prefetches
        stride = addr - entry.last_addr
        if stride != 0 and stride == entry.stride:
            entry.confidence = min(entry.confidence + 1, self.threshold + 1)
        else:
            entry.stride = stride
            entry.confidence = 0
        entry.last_addr = addr
        if entry.confidence >= self.threshold and entry.stride:
            prefetches = [addr + entry.stride * i for i in range(1, self.degree + 1)]
            self.issued += len(prefetches)
        return prefetches


class CompositePrefetcher:
    """Stream + spatial, de-duplicated per observation."""

    def __init__(self, line_bytes: int = 64):
        self.parts = [
            StridePrefetcher(),
            NextLinePrefetcher(line_bytes=line_bytes, degree=1),
        ]

    def observe(self, addr: int, pc: int) -> List[int]:
        seen = set()
        out: List[int] = []
        for part in self.parts:
            for candidate in part.observe(addr, pc):
                if candidate not in seen:
                    seen.add(candidate)
                    out.append(candidate)
        return out
