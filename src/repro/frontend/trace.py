"""Dynamic instruction traces.

A :class:`Trace` is the unit of work the cycle simulator consumes: the
static :class:`~repro.isa.program.Program` plus the dynamic sequence of
(pc, next_pc, taken, memory address) tuples the functional emulator
produced.  This mirrors the paper's trace-based Scarab frontend, which
replays "a precise, continuous sequence of dynamically executed basic
blocks along with their corresponding memory addresses" and re-fetches
static code on the wrong path.

Traces can be serialized to a compact binary format (``.rtrace``) or to
JSONL for inspection; both round-trip exactly.
"""

from __future__ import annotations

import io
import json
import struct
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence

from ..isa import Instruction, Program, assemble, disassemble


class DynamicInstruction:
    """One dynamically executed instruction.

    ``seq`` is the dynamic instruction number (age order: smaller = older).
    ``mem_addr`` is the effective byte address for memory operations, else
    ``None``.  ``wrong_path`` marks instructions the simulator fabricated
    while fetching down a mispredicted path; they never appear in stored
    traces.
    """

    __slots__ = ("seq", "trace_seq", "pc", "instr", "next_pc", "taken", "mem_addr",
                 "wrong_path")

    def __init__(
        self,
        seq: int,
        pc: int,
        instr: Instruction,
        next_pc: int,
        taken: bool = False,
        mem_addr: Optional[int] = None,
        wrong_path: bool = False,
        trace_seq: Optional[int] = None,
    ):
        self.seq = seq
        # Position in the stored trace (age on the correct path); -1 for
        # wrong-path instructions.  Defaults to seq for trace entries.
        self.trace_seq = seq if trace_seq is None else trace_seq
        self.pc = pc
        self.instr = instr
        self.next_pc = next_pc
        self.taken = taken
        self.mem_addr = mem_addr
        self.wrong_path = wrong_path

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        wp = " WP" if self.wrong_path else ""
        return f"<#{self.seq}{wp} pc={self.pc} {self.instr.render()} -> {self.next_pc}>"


@dataclass
class Trace:
    """A dynamic trace: program plus executed instruction stream."""

    program: Program
    entries: List[DynamicInstruction] = field(default_factory=list)
    name: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            self.name = self.program.name

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[DynamicInstruction]:
        return iter(self.entries)

    def __getitem__(self, index):
        return self.entries[index]

    @property
    def instruction_count(self) -> int:
        return len(self.entries)

    def branch_count(self) -> int:
        return sum(1 for e in self.entries if e.instr.is_conditional_branch)

    def memory_count(self) -> int:
        return sum(1 for e in self.entries if e.instr.is_memory)

    def summary(self) -> dict:
        """Basic mix statistics, for workload characterization."""
        total = len(self.entries) or 1
        branches = self.branch_count()
        taken = sum(1 for e in self.entries if e.instr.is_conditional_branch and e.taken)
        return {
            "name": self.name,
            "instructions": len(self.entries),
            "branches": branches,
            "branch_ratio": branches / total,
            "taken_ratio": taken / branches if branches else 0.0,
            "memory_ratio": self.memory_count() / total,
        }


# -- binary serialization --------------------------------------------------

_MAGIC = b"RTRC"
_VERSION = 2
_ENTRY = struct.Struct("<IIBQ")  # pc, next_pc, flags, mem_addr
_FLAG_TAKEN = 1
_FLAG_HAS_MEM = 2


def write_trace(trace: Trace, path: str) -> None:
    """Serialize *trace* to a ``.rtrace`` binary file."""
    with open(path, "wb") as fh:
        _write_trace_stream(trace, fh)


def _write_trace_stream(trace: Trace, fh) -> None:
    listing = disassemble(trace.program).encode()
    data_blob = json.dumps(sorted(trace.program.data.items())).encode()
    name = trace.name.encode()
    fh.write(_MAGIC)
    fh.write(struct.pack("<HIII", _VERSION, len(name), len(listing), len(data_blob)))
    fh.write(struct.pack("<I", len(trace.entries)))
    fh.write(name)
    fh.write(listing)
    fh.write(data_blob)
    for e in trace.entries:
        flags = (_FLAG_TAKEN if e.taken else 0) | (_FLAG_HAS_MEM if e.mem_addr is not None else 0)
        fh.write(_ENTRY.pack(e.pc, e.next_pc, flags, e.mem_addr or 0))


def read_trace(path: str) -> Trace:
    """Deserialize a ``.rtrace`` file written by :func:`write_trace`."""
    with open(path, "rb") as fh:
        return _read_trace_stream(fh)


def _read_trace_stream(fh) -> Trace:
    magic = fh.read(4)
    if magic != _MAGIC:
        raise ValueError(f"not a trace file (magic {magic!r})")
    version, name_len, listing_len, data_len = struct.unpack("<HIII", fh.read(14))
    if version != _VERSION:
        raise ValueError(f"unsupported trace version {version}")
    (count,) = struct.unpack("<I", fh.read(4))
    name = fh.read(name_len).decode()
    listing = fh.read(listing_len).decode()
    data_blob = fh.read(data_len).decode()
    program = assemble(listing, name=name)
    program.data.update({int(k): int(v) for k, v in json.loads(data_blob)})
    entries: List[DynamicInstruction] = []
    for seq in range(count):
        pc, next_pc, flags, mem_addr = _ENTRY.unpack(fh.read(_ENTRY.size))
        instr = program.at(pc)
        if instr is None:
            raise ValueError(f"trace entry {seq} references pc {pc} outside program")
        entries.append(
            DynamicInstruction(
                seq=seq,
                pc=pc,
                instr=instr,
                next_pc=next_pc,
                taken=bool(flags & _FLAG_TAKEN),
                mem_addr=mem_addr if flags & _FLAG_HAS_MEM else None,
            )
        )
    return Trace(program=program, entries=entries, name=name)


def trace_to_bytes(trace: Trace) -> bytes:
    buf = io.BytesIO()
    _write_trace_stream(trace, buf)
    return buf.getvalue()


def trace_from_bytes(blob: bytes) -> Trace:
    return _read_trace_stream(io.BytesIO(blob))


# -- JSONL serialization -----------------------------------------------------


def write_trace_jsonl(trace: Trace, path: str) -> None:
    """Human-inspectable JSONL: one header line, then one line per entry."""
    with open(path, "w") as fh:
        header = {
            "name": trace.name,
            "listing": disassemble(trace.program),
            "data": sorted(trace.program.data.items()),
        }
        fh.write(json.dumps(header) + "\n")
        for e in trace.entries:
            fh.write(
                json.dumps(
                    {"pc": e.pc, "next_pc": e.next_pc, "taken": e.taken, "mem": e.mem_addr}
                )
                + "\n"
            )


def read_trace_jsonl(path: str) -> Trace:
    with open(path) as fh:
        header = json.loads(fh.readline())
        program = assemble(header["listing"], name=header["name"])
        program.data.update({int(k): int(v) for k, v in header["data"]})
        entries = []
        for seq, line in enumerate(fh):
            rec = json.loads(line)
            instr = program.at(rec["pc"])
            if instr is None:
                raise ValueError(f"entry {seq} references pc {rec['pc']} outside program")
            entries.append(
                DynamicInstruction(
                    seq=seq,
                    pc=rec["pc"],
                    instr=instr,
                    next_pc=rec["next_pc"],
                    taken=rec["taken"],
                    mem_addr=rec["mem"],
                )
            )
    return Trace(program=program, entries=entries, name=header["name"])
