"""Job specifications: the hashable identity of one unit of work.

A spec is everything needed to (re)produce one result — and *nothing*
else.  Two figures asking for the same ``(benchmark, rf_size, scheme,
instructions, redefine_delay, record_register_events)`` cell share one
spec, one simulation, and one cache entry.  Specs are frozen dataclasses
(usable as dict keys) with a canonical JSON form whose SHA-256 digest,
combined with the code-version fingerprint, addresses the persistent
store.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass
from typing import Dict, Union


@dataclass(frozen=True)
class TierPolicy:
    """How much detail a cell simulates (DESIGN.md, "Tiered simulation").

    ``detailed`` runs the whole trace through the cycle core (bit-exact
    reference mode); ``tiered`` fast-forwards functionally and simulates
    only SimPoint-weighted windows, reconstituting whole-run statistics.
    The policy is part of the spec identity: a tiered result never
    answers for a detailed request, or vice versa.
    """

    mode: str = "detailed"  # detailed | tiered
    interval: int = 2_000  #: SimPoint interval (tiered mode only)
    max_windows: int = 6  #: maximum detailed windows (tiered mode only)
    seed: int = 0  #: clustering seed (tiered mode only)

    def __post_init__(self):
        if self.mode not in ("detailed", "tiered"):
            raise ValueError(
                f"tier mode must be 'detailed' or 'tiered', got {self.mode!r}")

    def describe(self) -> str:
        if self.mode == "detailed":
            return ""
        return f" tiered(i{self.interval}k{self.max_windows})"


#: The default policy: full-trace detailed simulation (the reference tier).
DETAILED = TierPolicy()


@dataclass(frozen=True)
class CellSpec:
    """One timing simulation: benchmark x machine configuration."""

    benchmark: str
    rf_size: int
    scheme: str
    instructions: int
    redefine_delay: int = 0
    record_register_events: bool = False
    tier: TierPolicy = DETAILED

    kind = "cell"

    def __post_init__(self):
        # spec_from_dict round-trips nested dataclasses as plain dicts
        # (asdict recurses); coerce so equality and hashing survive.
        if isinstance(self.tier, dict):
            object.__setattr__(self, "tier", TierPolicy(**self.tier))

    def describe(self) -> str:
        extra = ""
        if self.redefine_delay:
            extra += f" d{self.redefine_delay}"
        if self.record_register_events:
            extra += " +events"
        extra += self.tier.describe()
        return f"{self.benchmark}/rf{self.rf_size}/{self.scheme}{extra}"


@dataclass(frozen=True)
class RegionSpec:
    """One trace-level atomic-region classification (no timing sim)."""

    benchmark: str
    instructions: int

    kind = "regions"

    def describe(self) -> str:
        return f"{self.benchmark}/regions"


Spec = Union[CellSpec, RegionSpec]

_SPEC_TYPES = {CellSpec.kind: CellSpec, RegionSpec.kind: RegionSpec}


def register_spec_type(cls):
    """Register an external frozen-dataclass spec type by its ``kind``.

    Lets packages layered above the harness (e.g. ``repro.validate``)
    round-trip their specs through :func:`spec_from_dict` /
    :func:`spec_digest` without the harness importing them.  Returns the
    class, so it is usable as a decorator.
    """
    kind = getattr(cls, "kind", None)
    if not isinstance(kind, str) or not kind:
        raise TypeError(f"{cls.__name__} must define a non-empty string 'kind'")
    existing = _SPEC_TYPES.get(kind)
    if existing is not None and existing is not cls:
        raise ValueError(f"spec kind {kind!r} already registered "
                         f"to {existing.__name__}")
    _SPEC_TYPES[kind] = cls
    return cls


def spec_to_dict(spec: Spec) -> Dict:
    data = asdict(spec)
    data["kind"] = spec.kind
    return data


def spec_from_dict(data: Dict) -> Spec:
    data = dict(data)
    cls = _SPEC_TYPES[data.pop("kind")]
    return cls(**data)


def spec_digest(spec: Spec) -> str:
    """Content hash of the spec's canonical JSON form."""
    payload = json.dumps(spec_to_dict(spec), sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()
