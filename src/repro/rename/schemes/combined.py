"""ATR combined with non-speculative early release (paper section 4.3).

The two mechanisms are synergistic: ATR releases registers allocated in
atomic commit regions as soon as they are redefined and consumed —
potentially long before precommit — while nonspec-ER covers the non-atomic
registers, freeing them once their redefiner precommits.  The consumer
counter is shared (paper section 4.4 notes the combination therefore adds
effectively no storage); the no-early-release marking is kept as a
separate bit so bulk marking does not destroy the counts nonspec-ER needs
(see ``repro.rename.physreg`` for the encoding discussion).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ...isa import RegClass
from .atr import AtrScheme


class CombinedScheme(AtrScheme):
    """ATR for atomic regions, nonspec-ER for everything else."""

    name = "combined"
    uses_precommit = True

    def __init__(self, redefine_delay: int = 0, debug_checks: bool = True):
        super().__init__(
            redefine_delay=redefine_delay,
            debug_checks=debug_checks,
            restore_counts_on_flush=True,
        )
        self._redefiner: Dict[Tuple[RegClass, int], tuple] = {}

    # -- rename: unclaimed prevs fall through to nonspec tracking ----------------
    def _not_claimed(self, entry, record, cycle: int) -> None:
        self._redefiner[(record.file, record.release_prev)] = (entry, record)

    # -- release triggers ---------------------------------------------------------
    def _count_reached_zero(self, file_cls: RegClass, ptag: int, cycle: int) -> None:
        file = self.unit.files[file_cls]
        e = file.prt.entries[ptag]
        if not e.value_ready:
            return
        if file.prt.redefined_visible(ptag, cycle) and not e.early_released:
            self._atr_release(file_cls, ptag)
            return
        self._try_nonspec(file_cls, ptag)

    def on_writeback(self, file_cls: RegClass, ptag: int, cycle: int) -> None:
        file = self.unit.files[file_cls]
        e = file.prt.entries[ptag]
        if e.consumer_count != 0 or e.early_released:
            return
        if file.prt.redefined_visible(ptag, cycle):
            self._atr_release(file_cls, ptag)
            return
        self._try_nonspec(file_cls, ptag)

    def _try_nonspec(self, file_cls: RegClass, ptag: int) -> None:
        redefiner = self._redefiner.get((file_cls, ptag))
        if redefiner is None:
            return
        entry, record = redefiner
        if entry.precommitted and not entry.squashed and record.release_prev == ptag:
            self._nonspec_release(file_cls, record)

    def on_precommit(self, entry, cycle: int) -> None:
        for record in entry.dests:
            ptag = record.release_prev
            if ptag is None:
                continue
            prt = self.unit.files[record.file].prt
            if prt.consumers(ptag) == 0 and prt.is_written(ptag):
                self._nonspec_release(record.file, record)

    def _nonspec_release(self, file_cls: RegClass, record) -> None:
        ptag = record.release_prev
        record.release_prev = None
        self._redefiner.pop((file_cls, ptag), None)
        file = self.unit.files[file_cls]
        file.prt.entries[ptag].early_released = True
        file.freelist.free(ptag)
        self.stats.nonspec_frees += 1
        self._notify_release(file_cls, ptag)

    # -- commit / flush ------------------------------------------------------------
    def on_commit(self, entry, cycle: int) -> None:
        for record in entry.dests:
            if record.release_prev is not None:
                self._redefiner.pop((record.file, record.release_prev), None)
        super().on_commit(entry, cycle)

    def on_flush(self, flushed: List, cycle: int) -> None:
        for entry in flushed:
            for record in entry.dests:
                if record.release_prev is not None:
                    key = (record.file, record.release_prev)
                    registered = self._redefiner.get(key)
                    if registered is not None and registered[0] is entry:
                        del self._redefiner[key]
        super().on_flush(flushed, cycle)
