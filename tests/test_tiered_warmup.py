"""Tiered simulation: warmup equivalence, window stitching, spec plumbing.

The load-bearing property is *warmup equivalence*: functionally
fast-forwarding a prefix and then running a detailed window must land on
exactly the architectural state the golden emulator reaches at the
window's end — on every kernel in the suite.  If warmup primed a wrong
register value, skipped a store, or diverged from the trace, the
detailed window's value execution would expose it here.
"""

import json

import pytest

from repro.frontend.emulator import Emulator
from repro.harness import (
    CellSpec,
    TierPolicy,
    simulate_cell,
    spec_digest,
    spec_from_dict,
    spec_to_dict,
)
from repro.pipeline import Core, fast_test_config
from repro.pipeline.warmup import fast_forward
from repro.tiered import run_tiered
from repro.workloads import ALL_BENCHMARKS, build_trace
from repro.workloads.simpoint import SimPoint, slice_trace


@pytest.mark.parametrize("kernel", sorted(ALL_BENCHMARKS))
def test_warmup_equivalence_kernel_suite(kernel):
    """fast-forward -> detailed window == emulator-from-reset, exactly."""
    trace = build_trace(kernel, 2400)
    total = len(trace.entries)
    start = total // 2
    config = fast_test_config(rf_size=64, scheme="atr")

    warm = fast_forward(config, trace, [start])[0]
    assert warm.instructions == start

    window = SimPoint(interval_index=0, start=start, length=total - start,
                      weight=1.0, cluster=0)
    core = Core(config, slice_trace(trace, window), warmup=warm)
    core.run()

    emulator = Emulator(trace.program)
    for _ in range(total):
        assert emulator.step() is not None
    golden = emulator.snapshot()

    mismatches = core.architectural_state().diff(golden, limit=16)
    assert not mismatches, "\n".join(mismatches)


def test_warmup_stops_deduplicated_and_ordered():
    trace = build_trace("505.mcf_r", 1200)
    config = fast_test_config(rf_size=64)
    snapshots = fast_forward(config, trace, [800, 0, 400, 800])
    assert [w.instructions for w in snapshots] == [0, 400, 800]
    # The cold checkpoint carries reset-state registers.
    assert snapshots[0].arch.int_regs == tuple([0] * 16)


def test_warmup_rejects_out_of_range_stops():
    trace = build_trace("505.mcf_r", 600)
    config = fast_test_config(rf_size=64)
    with pytest.raises(ValueError):
        fast_forward(config, trace, [len(trace.entries) + 1])


def test_warmup_checkpoint_seeds_many_cores():
    """Without consume, one checkpoint must be reusable: two cores seeded
    from it may not alias each other's branch/cache state."""
    trace = build_trace("531.deepsjeng_r", 1600)
    config = fast_test_config(rf_size=64, scheme="atr")
    start = 800
    warm = fast_forward(config, trace, [start])[0]
    window = SimPoint(interval_index=0, start=start, length=800,
                      weight=1.0, cluster=0)
    first = Core(config, slice_trace(trace, window), warmup=warm)
    second = Core(config, slice_trace(trace, window), warmup=warm)
    assert first.state.memory is not second.state.memory
    assert first.state.branch_unit is not second.state.branch_unit
    a, b = first.run(), second.run()
    assert a.to_dict() == b.to_dict()


def test_tiered_stitching_scales_to_full_trace():
    trace = build_trace("505.mcf_r", 6000)
    config = fast_test_config(rf_size=64, scheme="atr")
    stats, scheme_stats, info = run_tiered(config, trace, interval=1000,
                                           max_windows=3)
    assert stats.committed == len(trace.entries)
    assert stats.cycles > 0
    assert info["mode"] == "tiered"
    assert info["detailed_instructions"] == sum(
        w["length"] for w in info["windows"])
    assert info["detailed_instructions"] <= len(trace.entries)
    assert abs(sum(w["weight"] for w in info["windows"]) - 1.0) < 1e-9
    # Committed-instruction classes are scaled to full-trace magnitude.
    assert sum(stats.committed_by_class.values()) == pytest.approx(
        stats.committed, rel=0.05)
    # The scheme's accounting scales with it (atr frees registers early).
    assert scheme_stats.atr_frees > 0


def test_tiered_ipc_tracks_detailed_reference():
    """The tiered estimate is within a loose band of the full detailed
    run — this is a fidelity smoke, EXPERIMENTS.md holds the real data."""
    trace = build_trace("505.mcf_r", 6000)
    config = fast_test_config(rf_size=64, scheme="atr")
    stats, _, _ = run_tiered(config, trace, interval=1000, max_windows=3)
    detailed = Core(config, trace).run()
    assert stats.ipc == pytest.approx(detailed.ipc, rel=0.25)


def test_tier_policy_spec_roundtrip_and_identity():
    tiered = CellSpec("505.mcf_r", 64, "atr", 4000,
                      tier=TierPolicy(mode="tiered"))
    detailed = CellSpec("505.mcf_r", 64, "atr", 4000)
    assert spec_from_dict(spec_to_dict(tiered)) == tiered
    assert spec_from_dict(spec_to_dict(detailed)) == detailed
    # The tier is part of the spec identity: a tiered result must never
    # answer a detailed request from the cache.
    assert spec_digest(tiered) != spec_digest(detailed)
    assert "tiered" in tiered.describe()
    with pytest.raises(ValueError):
        TierPolicy(mode="approximate")


def test_tiered_cell_through_harness():
    spec = CellSpec("505.mcf_r", 64, "atr", 4000,
                    tier=TierPolicy(mode="tiered", interval=1000,
                                    max_windows=2))
    result = simulate_cell(spec)
    assert result.stats.committed == 4000
    assert result.tier_info is not None
    assert len(result.tier_info["windows"]) <= 2

    from repro.harness import decode_cell_result, encode_cell_result
    decoded = decode_cell_result(encode_cell_result(result))
    assert decoded.tier_info == result.tier_info
    assert decoded.stats.to_dict() == result.stats.to_dict()


def test_tiered_rejects_register_event_recording():
    spec = CellSpec("505.mcf_r", 64, "atr", 4000,
                    record_register_events=True,
                    tier=TierPolicy(mode="tiered"))
    with pytest.raises(ValueError, match="detailed"):
        simulate_cell(spec)


def test_bench_history_appends_and_truncates(tmp_path):
    from repro.bench import HISTORY_LIMIT, append_history

    path = str(tmp_path / "BENCH_history.json")
    result = {
        "protocol": {"instructions": 100},
        "aggregate": {"instr_per_sec": 1.0},
        "tiered_aggregate": {"instr_per_sec": 5.0},
    }
    append_history(result, path)
    append_history(result, path)
    history = json.loads(open(path).read())
    assert len(history) == 2
    assert all("timestamp" in entry for entry in history)
    assert history[-1]["tiered_aggregate"]["instr_per_sec"] == 5.0

    # A corrupt trajectory restarts rather than crashing the bench.
    with open(path, "w") as fh:
        fh.write("{not json")
    append_history(result, path)
    assert len(json.loads(open(path).read())) == 1

    # The trajectory stays bounded.
    with open(path, "w") as fh:
        json.dump([{"timestamp": "t"}] * HISTORY_LIMIT, fh)
    append_history(result, path)
    assert len(json.loads(open(path).read())) == HISTORY_LIMIT
