"""Branch prediction: TAGE-SC-L-lite, bimodal, gshare, BTB, indirect, RAS."""

from .interface import DirectionPredictor, Prediction, TargetPredictor, saturate
from .simple import AlwaysNotTaken, AlwaysTaken, Bimodal, GShare, Oracle
from .tage import LoopPredictor, Tage
from .targets import BranchTargetBuffer, IndirectTargetPredictor, ReturnAddressStack
from .unit import BranchStats, BranchUnit

__all__ = [
    "DirectionPredictor", "TargetPredictor", "Prediction", "saturate",
    "AlwaysTaken", "AlwaysNotTaken", "Oracle", "Bimodal", "GShare",
    "Tage", "LoopPredictor",
    "BranchTargetBuffer", "IndirectTargetPredictor", "ReturnAddressStack",
    "BranchUnit", "BranchStats",
]
