"""Persistent store: hit/miss, fingerprint invalidation, management."""

import pytest

from repro.harness import (
    CellSpec,
    ResultStore,
    code_fingerprint,
    default_store,
    simulate_cell,
)

SPEC = CellSpec("505.mcf_r", 64, "atr", 1000)


@pytest.fixture(scope="module")
def cell():
    return simulate_cell(SPEC)


def test_miss_then_hit(tmp_path, cell):
    store = ResultStore(root=tmp_path)
    assert store.get(SPEC) is None
    store.put(SPEC, cell)
    cached = store.get(SPEC)
    assert cached is not None
    assert cached.ipc == cell.ipc
    assert cached.stats == cell.stats
    assert (store.hits, store.misses) == (1, 1)


def test_fingerprint_change_invalidates(tmp_path, cell):
    old = ResultStore(root=tmp_path, fingerprint="a" * 64)
    old.put(SPEC, cell)
    assert old.get(SPEC) is not None

    # Same root, new code version: must be a miss, old entry untouched.
    new = ResultStore(root=tmp_path, fingerprint="b" * 64)
    assert new.get(SPEC) is None
    new.put(SPEC, cell)
    info = new.info()
    assert len(info["generations"]) == 2
    assert info["entries"] == 2
    assert sum(g["current"] for g in info["generations"]) == 1


def test_corrupt_entry_reads_as_miss_and_is_removed(tmp_path, cell):
    store = ResultStore(root=tmp_path)
    path = store.put(SPEC, cell)
    path.write_text("{not json")
    assert store.get(SPEC) is None
    assert not path.exists()
    # Recomputed and re-stored: hits again.
    store.put(SPEC, cell)
    assert store.get(SPEC) is not None


def test_clear_removes_all_generations(tmp_path, cell):
    ResultStore(root=tmp_path, fingerprint="a" * 64).put(SPEC, cell)
    ResultStore(root=tmp_path, fingerprint="b" * 64).put(SPEC, cell)
    store = ResultStore(root=tmp_path)
    assert store.clear() == 2
    assert store.info()["entries"] == 0
    assert store.clear() == 0  # idempotent, even with no directory content


def test_default_store_honors_cache_dir_env(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "elsewhere"))
    store = default_store()
    assert store is not None
    assert store.root == tmp_path / "elsewhere"


def test_default_store_disabled_by_no_cache_env(monkeypatch):
    monkeypatch.setenv("REPRO_NO_CACHE", "1")
    assert default_store() is None


def test_code_fingerprint_stable_in_process():
    assert code_fingerprint() == code_fingerprint()
    assert len(code_fingerprint()) == 64
