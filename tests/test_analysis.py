"""Analysis package: region classification, lifetime shares, timing."""

import dataclasses

import pytest

from repro.analysis import (
    atomic_ratio,
    classify_regions,
    lifetime_shares,
    atomic_event_timing,
    timeline_table,
)
from repro.frontend import run_program
from repro.isa import RegClass, assemble
from repro.pipeline import Core, fast_test_config


def _report(src):
    return classify_regions(run_program(assemble(src)))


class TestRegionClassifier:
    def test_pure_alu_chain_is_atomic(self):
        report = _report("""
            movi r1, 1
            add r2, r1, r1
            add r2, r2, r1
            halt
        """)
        chains = [c for c in report.chains if c.closed]
        # r2's first definition is redefined with no breaker in between
        assert any(c.atomic for c in chains)

    def test_branch_breaks_non_branch_region(self):
        report = _report("""
            movi r1, 1
            add r2, r1, r1
            cmp r1, r2
            beq skip
        skip:
            add r2, r1, r1
            halt
        """)
        r2_chains = [c for c in report.chains
                     if c.closed and c.slot == 2 and c.file is RegClass.INT]
        assert r2_chains
        assert all(not c.non_branch for c in r2_chains)
        # but no memory/div involved: still non-except
        assert all(c.non_except for c in r2_chains)

    def test_load_breaks_non_except_region(self):
        report = _report("""
            movi r1, 4096
            add r2, r1, r1
            ld r3, r1, 0
            add r2, r1, r1
            halt
        """)
        r2_chains = [c for c in report.chains if c.closed and c.slot == 2]
        assert all(not c.non_except for c in r2_chains)
        assert all(c.non_branch for c in r2_chains)
        assert all(not c.atomic for c in r2_chains)

    def test_region_may_begin_with_load(self):
        """The load's own destination chain can still be atomic."""
        report = _report("""
            movi r1, 4096
            ld r3, r1, 0
            add r4, r3, r3
            movi r3, 5
            halt
        """)
        r3_chains = [c for c in report.chains if c.closed and c.slot == 3]
        assert any(c.atomic for c in r3_chains)

    def test_redefining_load_is_not_atomic(self):
        report = _report("""
            movi r1, 4096
            movi r3, 7
            ld r3, r1, 0
            halt
        """)
        r3_chains = [c for c in report.chains if c.closed and c.slot == 3]
        assert all(not c.atomic for c in r3_chains)

    def test_consumer_counting(self):
        report = _report("""
            movi r1, 1
            add r2, r1, r1
            add r3, r2, r2
            add r4, r2, r1
            movi r2, 0
            halt
        """)
        chain = next(c for c in report.chains
                     if c.closed and c.slot == 2 and c.consumers)
        assert chain.consumers == 3  # two reads in add r3 + one in add r4

    def test_open_chains_counted_not_atomic(self):
        report = _report("movi r1, 1\nhalt")
        open_chains = [c for c in report.chains if not c.closed]
        assert open_chains
        assert report.ratio("atomic") < 1.0

    def test_ratio_kinds_ordering(self):
        """atomic <= min(non_branch, non_except) by definition."""
        report = _report("""
            movi r1, 4096
            movi r2, 8
            movi r3, 1
        loop:
            ld r4, r1, 0
            add r5, r4, r3
            xor r5, r5, r4
            sub r2, r2, r3
            test r2, r2
            bne loop
            halt
        """)
        atomic = report.ratio("atomic")
        assert atomic <= report.ratio("non_branch") + 1e-12
        assert atomic <= report.ratio("non_except") + 1e-12

    def test_unknown_kind_rejected(self):
        report = _report("halt")
        with pytest.raises(ValueError):
            report.ratio("bogus")

    def test_consumer_histogram(self):
        report = _report("""
            movi r1, 1
            add r2, r1, r1
            add r3, r2, r1
            movi r2, 0
            halt
        """)
        histogram = report.consumer_histogram()
        assert sum(histogram.values()) == len(report.atomic_chains())


class TestLifetime:
    def _records(self, src, scheme="baseline"):
        trace = run_program(assemble(src))
        config = dataclasses.replace(
            fast_test_config(scheme=scheme), record_register_events=True
        )
        core = Core(config, trace)
        core.run()
        return core.event_log.records

    LOOP = """
        movi r1, 20
        movi r3, 1
        movi r5, 4096
    loop:
        ld r2, r5, 0
        add r4, r2, r3
        xor r4, r4, r2
        sub r1, r1, r3
        test r1, r1
        bne loop
        halt
    """

    def test_shares_sum_to_one(self):
        shares = lifetime_shares(self._records(self.LOOP), RegClass.INT)
        assert shares.records > 0
        assert shares.in_use + shares.unused + shares.verified_unused == pytest.approx(1.0)

    def test_all_shares_nonnegative(self):
        shares = lifetime_shares(self._records(self.LOOP))
        assert shares.in_use >= 0
        assert shares.unused >= 0
        assert shares.verified_unused >= 0

    def test_empty_records(self):
        shares = lifetime_shares([])
        assert shares.records == 0
        assert shares.in_use == 0.0

    def test_event_ordering_in_records(self):
        for record in self._records(self.LOOP):
            assert record.complete
            assert record.alloc_cycle <= record.redefine_cycle
            assert record.redefine_cycle <= record.redefiner_commit_cycle
            if record.redefiner_precommit_cycle is not None:
                assert record.redefiner_precommit_cycle <= record.redefiner_commit_cycle


class TestTiming:
    def test_atomic_timing_ordering(self):
        src = TestLifetime.LOOP
        trace = run_program(assemble(src))
        config = dataclasses.replace(
            fast_test_config(), record_register_events=True, record_timeline=True
        )
        core = Core(config, trace)
        core.run()
        report = classify_regions(trace)
        timing = atomic_event_timing(core.event_log.records, report)
        assert timing.chains > 0
        assert timing.rename_to_redefine <= timing.rename_to_commit
        assert timing.rename_to_consume <= timing.rename_to_commit

    def test_timeline_table_renders(self):
        trace = run_program(assemble(TestLifetime.LOOP))
        config = dataclasses.replace(fast_test_config(), record_timeline=True)
        core = Core(config, trace)
        core.run()
        table = timeline_table(core.timeline, trace, start_seq=3, count=5)
        assert "Re" in table and "Pr" in table
        assert len(table.splitlines()) == 6  # header + 5 rows


def test_atomic_ratio_convenience(atomic_program):
    trace = run_program(atomic_program)
    assert 0 < atomic_ratio(trace) < 1
