"""The cycle-level out-of-order core.

Trace-driven with execution-driven wrong-path modeling, mirroring the
paper's Scarab setup (section 5.1): the correct path replays the
functional emulator's trace; after a detected misprediction, fetch follows
the predicted (wrong) target through the *static* program image, and the
fabricated wrong-path instructions are renamed, scheduled, and executed
until the mispredicted branch resolves and the pipeline flushes.

Per-cycle phase order (oldest work first):

1. scheme tick (delayed ATR redefinition signals become visible)
2. completions (writeback, wakeup, branch resolution -> flush)
3. precommit pointer advance
4. commit (up to retire width)
5. issue (select oldest-ready per port group)
6. rename/dispatch (up to rename width, with all stall causes)
7. fetch (up to 2 fetch targets / 6 instructions, icache modeled)

Value execution (``config.execute_values``) computes every correct-path
result through *physical* registers, so the committed architectural state
can be compared against the functional emulator — the end-to-end safety
check for early register release.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple

from ..branch import (
    AlwaysNotTaken,
    AlwaysTaken,
    Bimodal,
    BranchUnit,
    GShare,
    Prediction,
    Tage,
)
from ..frontend import (
    ArchState,
    DynamicInstruction,
    Trace,
    WrongPathSupplier,
    canonical_memory,
)
from ..isa import I_BYTES, FLAGS, OpClass, Opcode, RegClass, ireg, vreg
from ..isa.semantics import compute
from ..memory import MemoryHierarchy
from ..rename import CheckpointPool, RenameUnit, make_scheme
from ..rename.schemes import ReleaseScheme
from .config import CoreConfig
from .rob import ROBEntry, ReorderBuffer
from .stats import RegisterEventLog, SimStats

_WORD = 8

_PORT_GROUPS = {
    OpClass.INT_ALU: "alu", OpClass.INT_MUL: "alu", OpClass.INT_DIV: "alu",
    OpClass.BRANCH: "alu", OpClass.JUMP: "alu", OpClass.JUMP_INDIRECT: "alu",
    OpClass.CALL: "alu", OpClass.RETURN: "alu",
    OpClass.VEC_ALU: "alu", OpClass.VEC_MUL: "alu", OpClass.VEC_DIV: "alu",
    OpClass.NOP: "alu", OpClass.HALT: "alu",
    OpClass.LOAD: "load", OpClass.VEC_LOAD: "load",
    OpClass.STORE: "store", OpClass.VEC_STORE: "store",
}


def _make_predictor(name: str):
    if name == "tage":
        return Tage()
    if name == "gshare":
        return GShare()
    if name == "bimodal":
        return Bimodal()
    if name == "always_taken":
        return AlwaysTaken()
    if name == "always_not_taken":
        return AlwaysNotTaken()
    raise ValueError(f"unknown predictor {name!r}")


class _FetchedInstr:
    """One instruction sitting in the frontend pipeline."""

    __slots__ = ("ready_cycle", "dyn", "prediction", "mispredicted", "fetch_cycle")

    def __init__(self, ready_cycle: int, dyn: DynamicInstruction,
                 prediction: Optional[Prediction], mispredicted: bool, fetch_cycle: int):
        self.ready_cycle = ready_cycle
        self.dyn = dyn
        self.prediction = prediction
        self.mispredicted = mispredicted
        self.fetch_cycle = fetch_cycle


class _StoreRecord:
    """In-flight store: address/value known at issue, memory written at commit."""

    __slots__ = ("seq", "issued", "words")

    def __init__(self, seq: int):
        self.seq = seq
        self.issued = False
        self.words: List[Tuple[int, int]] = []  # (word-aligned addr, value)


class DeadlockError(RuntimeError):
    """The simulation made no forward progress for too many cycles.

    Always carries the cycle, the retired-instruction count, and the
    ROB-head seq/opcode (when occupied); ``snapshot`` additionally holds
    the full :func:`~repro.validate.snapshot.pipeline_snapshot` and is
    rendered by ``__str__`` so harness failure reports show where the
    machine was stuck.
    """

    def __init__(self, message: str, cycle: int = -1, committed: int = -1,
                 total: int = -1, head_seq: Optional[int] = None,
                 head_opcode: Optional[str] = None,
                 snapshot: Optional[Dict] = None):
        super().__init__(message)
        self.message = message
        self.cycle = cycle
        self.committed = committed
        self.total = total
        self.head_seq = head_seq
        self.head_opcode = head_opcode
        self.snapshot = snapshot

    def __str__(self) -> str:
        text = self.message
        if self.snapshot is not None:
            from ..validate.snapshot import format_snapshot
            text += "\n" + format_snapshot(self.snapshot)
        return text


class Core:
    """One simulated core, bound to a trace and a release scheme."""

    def __init__(self, config: CoreConfig, trace: Trace,
                 scheme: Optional[ReleaseScheme] = None):
        config.validate()
        self.config = config
        self.trace = trace
        self.cycle = 0
        self.stats = SimStats()

        self.rename_unit = RenameUnit(
            int_size=config.int_rf_size,
            vec_size=config.vec_rf_size,
            counter_bits=config.counter_bits,
            reserve=config.freelist_reserve,
        )
        self.scheme = scheme if scheme is not None else make_scheme(
            config.scheme, config.redefine_delay, config.scheme_debug_checks
        )
        self.scheme.attach(self.rename_unit)

        self.branch_unit = BranchUnit(direction=_make_predictor(config.predictor))
        self.memory = MemoryHierarchy(config.memory)
        # Warm the instruction side with the code image, as the paper's
        # methodology warms each SimPoint before measurement; kernels are
        # loop-dominated, so an icache cold start would just add a fixed
        # DRAM delay to every run.
        if config.model_icache:
            code_bytes = len(trace.program) * I_BYTES
            for addr in range(0, code_bytes, config.memory.line_bytes):
                self.memory.l1i.fill(addr)
                self.memory.l2.fill(addr)
        self.rob = ReorderBuffer(config.rob_size)
        self.checkpoints = CheckpointPool(config.checkpoints)

        # Frontend state
        self._cursor = 0  # next correct-path trace index
        self._wrong_path = False
        self._wrong_pc: Optional[int] = None
        self._wp_supplier = WrongPathSupplier(trace.program)
        self._wp_ras_snapshot: Optional[tuple] = None
        self._fetch_stall_until = 0
        self._stalled_for_resolve = False
        self._fetch_queue: List[_FetchedInstr] = []
        self._fq_head = 0
        self._next_seq = 0
        self._last_fetch_block = -1

        # Scheduling state
        self._ready: Dict[str, list] = {"alu": [], "load": [], "store": []}
        self._waiters: Dict[Tuple[RegClass, int], List[ROBEntry]] = {}
        self._ptag_ready = {
            RegClass.INT: [True] * config.int_rf_size,
            RegClass.VEC: [True] * config.vec_rf_size,
        }
        self._completions: Dict[int, List[ROBEntry]] = {}
        self._rs_used = 0
        self._lq_used = 0
        self._sq_used = 0
        self._stores: Dict[int, _StoreRecord] = {}  # seq -> record (in-flight)
        self._store_order: List[int] = []  # seqs of in-flight stores, ascending
        # Oracle memory disambiguation: word address -> seqs of in-flight
        # stores writing it.  Trace addresses are known at rename, so loads
        # wait only for *conflicting* older stores (perfect memory
        # dependence prediction, as in trace-driven Scarab).
        self._store_words: Dict[int, List[int]] = {}
        self._results: Dict[int, object] = {}  # entry seq -> computed result

        # Value execution
        self._values = {
            RegClass.INT: [0] * config.int_rf_size,
            RegClass.VEC: [(0, 0, 0, 0)] * config.vec_rf_size,
        }
        self._mem_values: Dict[int, int] = dict(trace.program.data)

        # Register-event log for the analysis package
        self.event_log = RegisterEventLog() if config.record_register_events else None
        #: Per-committed-instruction timeline rows (trace_seq, pc, rename,
        #: issue, complete, precommit, commit) when record_timeline is set.
        self.timeline: List[tuple] = []
        if self.event_log is not None:
            log = self.event_log
            self.scheme.release_listener = (
                lambda file_cls, ptag: log.on_early_release(file_cls, ptag, self.cycle)
            )

        self._done = False
        # Optional interrupt controller (repro.pipeline.interrupts); set
        # by InterruptController itself.
        self._interrupt_controller = None
        self._interrupt_fetch_stall = False
        self._last_committed_trace_seq = -1

        # Online invariant sanitizer (repro.validate).  Imported lazily at
        # construction time only: validate layers on top of the harness,
        # which imports this module, so a top-level import would cycle.
        # With the switch off, the core holds no checker and every hook
        # site below is a single `is not None` test.
        self._checker = None
        if config.check_invariants:
            from ..validate.sanitizer import InvariantChecker
            self._checker = InvariantChecker(self)

    # ------------------------------------------------------------------ run --
    def run(self, max_cycles: Optional[int] = None) -> SimStats:
        """Simulate until the trace is fully committed; returns the stats."""
        if max_cycles is None:
            max_cycles = 5000 + 100 * len(self.trace)
        last_commit_cycle = 0
        last_committed = 0
        while not self._done:
            self.cycle += 1
            self.step()
            if self.stats.committed != last_committed:
                last_committed = self.stats.committed
                last_commit_cycle = self.cycle
            elif self.cycle - last_commit_cycle > 200_000:
                raise self._deadlock("no commit for 200k cycles")
            if self.cycle >= max_cycles:
                raise self._deadlock(f"exceeded max_cycles={max_cycles}")
        self.stats.cycles = self.cycle
        if self.config.conservation_check:
            self.check_conservation()
        return self.stats

    def _deadlock(self, reason: str) -> DeadlockError:
        """Build a fully diagnosed :class:`DeadlockError` for *reason*."""
        from ..validate.snapshot import pipeline_snapshot
        head = self.rob.head()
        if head is not None:
            head_desc = (f"ROB head #{head.seq} {head.instr.opcode.name}"
                         f" [{'issued' if head.issued else 'not issued'}, "
                         f"{'completed' if head.completed else 'not completed'}, "
                         f"{'precommitted' if head.precommitted else 'not precommitted'}]")
        else:
            head_desc = "ROB empty"
        return DeadlockError(
            f"{reason} at cycle {self.cycle} "
            f"({self.stats.committed}/{len(self.trace)} committed, {head_desc})",
            cycle=self.cycle,
            committed=self.stats.committed,
            total=len(self.trace),
            head_seq=head.seq if head is not None else None,
            head_opcode=head.instr.opcode.name if head is not None else None,
            snapshot=pipeline_snapshot(self),
        )

    def step(self) -> None:
        """Advance one cycle."""
        cycle = self.cycle
        self.scheme.tick(cycle)
        if self._interrupt_controller is not None:
            self._interrupt_fetch_stall = self._interrupt_controller.tick(cycle)
        self._process_completions(cycle)
        self._advance_precommit(cycle)
        self._commit(cycle)
        self._issue(cycle)
        self._rename(cycle)
        self._fetch(cycle)
        if self._checker is not None:
            self._checker.end_cycle(cycle)
        if (
            self._cursor >= len(self.trace.entries)
            and self._fq_head >= len(self._fetch_queue)
            and len(self.rob) == 0
        ):
            self._done = True

    # ------------------------------------------------------------- completions --
    def _process_completions(self, cycle: int) -> None:
        pending = self._completions.pop(cycle, None)
        if not pending:
            return
        pending.sort(key=lambda e: e.seq)
        for entry in pending:
            if entry.squashed:
                self._results.pop(entry.seq, None)
                continue
            entry.completed = True
            entry.cycle_complete = cycle
            if self._checker is not None:
                self._checker.on_writeback(entry)
            self._writeback(entry)
            for record in entry.dests:
                self._set_ready(record.file, record.new_ptag)
            if entry.instr.is_control:
                entry.resolved = True
                if entry.mispredicted:
                    self._flush_from(entry, cycle)

    def _writeback(self, entry: ROBEntry) -> None:
        result = self._results.pop(entry.seq, None)
        if result is None or not entry.dests:
            return
        record = entry.dests[0]
        self._values[record.file][record.new_ptag] = result

    def _set_ready(self, file_cls: RegClass, ptag: int) -> None:
        self._ptag_ready[file_cls][ptag] = True
        self.rename_unit.files[file_cls].prt.mark_written(ptag)
        self.scheme.on_writeback(file_cls, ptag, self.cycle)
        waiters = self._waiters.pop((file_cls, ptag), None)
        if not waiters:
            return
        for waiter in waiters:
            if waiter.squashed or waiter.issued:
                continue
            waiter.unready_sources -= 1
            if waiter.unready_sources == 0:
                self._enqueue_ready(waiter)

    def _enqueue_ready(self, entry: ROBEntry) -> None:
        group = _PORT_GROUPS[entry.instr.op_class]
        heapq.heappush(self._ready[group], (entry.seq, entry))

    # ---------------------------------------------------------------- precommit --
    def _advance_precommit(self, cycle: int) -> None:
        advanced = 0
        while advanced < self.config.precommit_width:
            entry = self.rob.at_offset(self.rob.precommit_offset)
            if entry is None:
                break
            # An exception-causing instruction blocks precommit until it
            # is *guaranteed not to fault*: for loads/stores that is
            # address translation (at issue), for divides operand
            # inspection (also at issue) -- NOT data return.  Precommit
            # therefore runs far ahead of commit during a cache miss
            # (paper section 2.3).
            if entry.instr.may_except and not entry.issued:
                break
            if not entry.resolved:
                break
            entry.precommitted = True
            entry.cycle_precommit = cycle
            if self._checker is not None:
                self._checker.on_precommit(entry)
            self.scheme.on_precommit(entry, cycle)
            if self._interrupt_controller is not None:
                self._interrupt_controller.on_precommit(entry)
            if self.event_log is not None:
                self.event_log.on_redefiner_precommit(entry, cycle)
            self.rob.precommit_offset += 1
            advanced += 1

    # ------------------------------------------------------------------- commit --
    def _commit(self, cycle: int) -> None:
        for _ in range(self.config.retire_width):
            entry = self.rob.head()
            if entry is None or not entry.completed or not entry.precommitted:
                break
            self.rob.pop_head()
            entry.committed = True
            entry.cycle_commit = cycle
            instr = entry.instr
            if instr.is_store:
                self._commit_store(entry, cycle)
            if instr.is_load:
                self._lq_used -= 1
            if self._checker is not None:
                self._checker.on_commit(entry)
            self.scheme.on_commit(entry, cycle)
            if entry.dyn.trace_seq >= 0:
                self._last_committed_trace_seq = entry.dyn.trace_seq
            if self.event_log is not None:
                self.event_log.on_redefiner_commit(entry, cycle)
            if entry.has_checkpoint:
                self.checkpoints.release_older_equal(entry.seq)
            self.stats.count_commit(instr.op_class.value)
            if self.config.record_timeline:
                self.timeline.append(
                    (entry.dyn.trace_seq, entry.dyn.pc, entry.cycle_rename,
                     entry.cycle_issue, entry.cycle_complete,
                     entry.cycle_precommit, entry.cycle_commit)
                )

    def _commit_store(self, entry: ROBEntry, cycle: int) -> None:
        record = self._stores.pop(entry.seq, None)
        if record is not None:
            for addr, value in record.words:
                self._mem_values[addr] = value
            try:
                self._store_order.remove(entry.seq)
            except ValueError:
                pass
        self._drop_store_words(entry)
        self._sq_used -= 1
        if entry.dyn.mem_addr is not None:
            self.memory.store(cycle, entry.dyn.mem_addr, pc=entry.dyn.pc)

    # -------------------------------------------------------------------- issue --
    def _issue(self, cycle: int) -> None:
        ports = {
            "alu": self.config.alu_ports,
            "load": self.config.load_ports,
            "store": self.config.store_ports,
        }
        for group, width in ports.items():
            heap = self._ready[group]
            deferred = []
            issued = 0
            while heap and issued < width:
                seq, entry = heapq.heappop(heap)
                if entry.squashed or entry.issued:
                    continue
                if group == "load" and self._load_blocked_by_store(entry):
                    deferred.append((seq, entry))
                    continue
                self._do_issue(entry, cycle)
                issued += 1
            for item in deferred:
                heapq.heappush(heap, item)

    def _load_blocked_by_store(self, entry: ROBEntry) -> bool:
        """True if an older, not-yet-issued store writes a word this load
        reads (the only ordering a perfectly-predicted machine enforces)."""
        addr = entry.dyn.mem_addr
        if addr is None:
            return False
        words = 4 if entry.instr.opcode is Opcode.VLD else 1
        for i in range(words):
            for store_seq in self._store_words.get(addr + i * _WORD, ()):
                if store_seq < entry.seq and not self._stores[store_seq].issued:
                    return True
        return False

    def _store_word_addrs(self, entry: ROBEntry):
        addr = entry.dyn.mem_addr
        if addr is None:
            return ()
        words = 4 if entry.instr.opcode is Opcode.VST else 1
        return tuple(addr + i * _WORD for i in range(words))

    def _do_issue(self, entry: ROBEntry, cycle: int) -> None:
        entry.issued = True
        entry.cycle_issue = cycle
        self._rs_used -= 1
        # Sanitizer first: its use-after-release / underflow checks must
        # observe the consumer counts before the scheme decrements them.
        if self._checker is not None:
            self._checker.on_issue(entry)
        self.scheme.on_issue(entry, cycle)
        if self.event_log is not None and not entry.wrong_path:
            for file_cls, _slot, ptag in entry.src_ptags:
                self.event_log.on_consume(file_cls, ptag, cycle)
        done = cycle + self._execute(entry, cycle)
        self._completions.setdefault(done, []).append(entry)

    def _execute(self, entry: ROBEntry, cycle: int) -> int:
        """Perform the execution side effects; returns the latency."""
        instr = entry.instr
        op_class = instr.op_class
        c = self.config
        if op_class in (OpClass.LOAD, OpClass.VEC_LOAD):
            return self._execute_load(entry, cycle)
        if op_class in (OpClass.STORE, OpClass.VEC_STORE):
            self._execute_store(entry)
            return c.lat_store
        if c.execute_values and not entry.wrong_path and instr.dests:
            if instr.opcode is Opcode.CALL:
                self._results[entry.seq] = entry.dyn.pc + 1
            elif instr.op_class not in (OpClass.NOP, OpClass.HALT):
                srcs = [
                    self._values[file_cls][ptag]
                    for file_cls, _slot, ptag in entry.src_ptags
                ]
                self._results[entry.seq] = compute(instr, srcs)
        latency = {
            OpClass.INT_ALU: c.lat_int_alu,
            OpClass.INT_MUL: c.lat_int_mul,
            OpClass.INT_DIV: c.lat_int_div,
            OpClass.VEC_ALU: c.lat_vec_alu,
            OpClass.VEC_MUL: c.lat_vec_mul,
            OpClass.VEC_DIV: c.lat_vec_div,
            OpClass.BRANCH: c.lat_branch,
            OpClass.JUMP: c.lat_branch,
            OpClass.JUMP_INDIRECT: c.lat_branch,
            OpClass.CALL: c.lat_branch,
            OpClass.RETURN: c.lat_branch,
            OpClass.NOP: 1,
            OpClass.HALT: 1,
        }[op_class]
        return latency

    def _execute_store(self, entry: ROBEntry) -> None:
        record = self._stores.get(entry.seq)
        if record is None:
            return
        record.issued = True
        if self.config.execute_values and not entry.wrong_path:
            addr = entry.dyn.mem_addr
            value = self._values[entry.src_ptags[0][0]][entry.src_ptags[0][2]]
            if entry.instr.opcode is Opcode.VST:
                record.words = [
                    ((addr + i * _WORD), lane) for i, lane in enumerate(value)
                ]
            else:
                record.words = [(addr, value)]

    def _execute_load(self, entry: ROBEntry, cycle: int) -> int:
        addr = entry.dyn.mem_addr
        if addr is None:  # wrong-path fetch past image edge; treat as hit
            return self.config.memory.l1d_latency
        is_vector = entry.instr.opcode is Opcode.VLD
        word_count = 4 if is_vector else 1
        forwarded = self._forward_from_stores(entry.seq, addr, word_count)
        if self.config.execute_values and not entry.wrong_path:
            lanes = []
            for i in range(word_count):
                word_addr = addr + i * _WORD
                value = forwarded.get(word_addr)
                if value is None:
                    value = self._mem_values.get(word_addr, 0)
                lanes.append(value)
            self._results[entry.seq] = tuple(lanes) if is_vector else lanes[0]
        if not is_vector and len(forwarded) == word_count:
            return self.config.lat_forward
        completion = self.memory.load(cycle, addr, pc=entry.dyn.pc)
        return max(1, completion - cycle)

    def _forward_from_stores(self, load_seq: int, addr: int, word_count: int) -> Dict[int, int]:
        """Youngest-older-store forwarding, per word."""
        out: Dict[int, int] = {}
        wanted = {addr + i * _WORD for i in range(word_count)}
        for store_seq in reversed(self._store_order):
            if store_seq >= load_seq:
                continue
            record = self._stores[store_seq]
            if not record.issued:
                continue
            for word_addr, value in record.words:
                if word_addr in wanted and word_addr not in out:
                    out[word_addr] = value
        return out

    # -------------------------------------------------------------------- rename --
    def _rename(self, cycle: int) -> None:
        renamed = 0
        config = self.config
        while renamed < config.rename_width:
            fetched = self._fetch_queue[self._fq_head] if self._fq_head < len(self._fetch_queue) else None
            if fetched is None or fetched.ready_cycle > cycle:
                if renamed == 0 and fetched is None:
                    self.stats.stall_empty += 1
                break
            instr = fetched.dyn.instr
            if self.rob.is_full:
                if renamed == 0:
                    self.stats.stall_rob += 1
                break
            if self._rs_used >= config.rs_size:
                if renamed == 0:
                    self.stats.stall_rs += 1
                break
            if instr.is_load and self._lq_used >= config.lq_size:
                if renamed == 0:
                    self.stats.stall_lq += 1
                break
            if instr.is_store and self._sq_used >= config.sq_size:
                if renamed == 0:
                    self.stats.stall_sq += 1
                break
            if not self.rename_unit.can_rename(instr):
                if renamed == 0:
                    self.stats.stall_freelist += 1
                    self.rename_unit.stall_cycles += 1
                break
            self._fq_head += 1
            if self._fq_head > 4096:
                del self._fetch_queue[: self._fq_head]
                self._fq_head = 0
            self._rename_one(fetched, cycle)
            renamed += 1

    def _rename_one(self, fetched: _FetchedInstr, cycle: int) -> None:
        dyn = fetched.dyn
        entry = ROBEntry(
            seq=dyn.seq,
            dyn=dyn,
            cycle_fetch=fetched.fetch_cycle,
            prediction=fetched.prediction,
            mispredicted=fetched.mispredicted,
        )
        entry.cycle_rename = cycle
        entry.src_ptags = self.rename_unit.lookup_sources(dyn.instr)
        # Sanitizer sees the sources before destination allocation (which
        # could legitimately recycle a ptag an unsafe scheme just freed).
        if self._checker is not None:
            self._checker.on_rename_sources(entry)
        self.scheme.pre_rename(entry, cycle)
        entry.dests = self.rename_unit.allocate_dests(dyn.instr, cycle, dyn.seq)
        if self.event_log is not None:
            for record in entry.dests:
                self.event_log.on_allocate(
                    record.file, record.new_ptag, dyn.trace_seq, cycle, entry.wrong_path
                )
                self.event_log.on_redefine(record.file, record.prev_ptag, entry, cycle)
        self.scheme.post_rename(entry, cycle)
        self.rob.append(entry)
        self.stats.renamed += 1
        if entry.wrong_path:
            self.stats.wrong_path_renamed += 1

        # Scheduling bookkeeping
        self._rs_used += 1
        instr = dyn.instr
        if instr.is_load:
            self._lq_used += 1
        if instr.is_store:
            self._sq_used += 1
            self._stores[entry.seq] = _StoreRecord(entry.seq)
            self._store_order.append(entry.seq)
            for word in self._store_word_addrs(entry):
                self._store_words.setdefault(word, []).append(entry.seq)
        unready = 0
        for file_cls, _slot, ptag in entry.src_ptags:
            if not self._ptag_ready[file_cls][ptag]:
                unready += 1
                self._waiters.setdefault((file_cls, ptag), []).append(entry)
        for record in entry.dests:
            self._ptag_ready[record.file][record.new_ptag] = False
        entry.unready_sources = unready
        if unready == 0:
            self._enqueue_ready(entry)

        # Checkpoint low-confidence branches (timing model only)
        if (
            instr.is_conditional_branch
            and fetched.prediction is not None
            and not fetched.prediction.confident
        ):
            entry.has_checkpoint = self.checkpoints.take(
                entry.seq, self.rename_unit.srt_snapshots()
            )
        if self._checker is not None:
            self._checker.on_rename(entry)

    # --------------------------------------------------------------------- fetch --
    def _fetch(self, cycle: int) -> None:
        if cycle < self._fetch_stall_until or self._stalled_for_resolve:
            return
        if self._interrupt_fetch_stall:
            return
        if len(self._fetch_queue) - self._fq_head >= 3 * self.config.fetch_width:
            return
        slots = self.config.fetch_width
        targets = self.config.fetch_targets_per_cycle
        while slots > 0 and targets > 0:
            dyn = self._next_fetch_instr()
            if dyn is None:
                break
            if self.config.model_icache and not self._icache_ok(dyn.pc, cycle):
                break
            prediction, mispredicted, taken_redirect = self._predict(dyn)
            self._fetch_queue.append(
                _FetchedInstr(
                    ready_cycle=cycle + self.config.frontend_depth,
                    dyn=dyn,
                    prediction=prediction,
                    mispredicted=mispredicted,
                    fetch_cycle=cycle,
                )
            )
            self.stats.fetched += 1
            self._advance_fetch_pc(dyn, prediction, mispredicted)
            slots -= 1
            if taken_redirect:
                targets -= 1
                self._last_fetch_block = -1
            if self._stalled_for_resolve:
                break

    def _next_fetch_instr(self) -> Optional[DynamicInstruction]:
        if self._wrong_path:
            if self._wrong_pc is None:
                return None
            dyn = self._wp_supplier.fetch(self._wrong_pc, self._next_seq)
            if dyn is None:
                return None
        else:
            if self._cursor >= len(self.trace.entries):
                return None
            traced = self.trace.entries[self._cursor]
            dyn = DynamicInstruction(
                seq=self._next_seq,
                pc=traced.pc,
                instr=traced.instr,
                next_pc=traced.next_pc,
                taken=traced.taken,
                mem_addr=traced.mem_addr,
                trace_seq=self._cursor,
            )
        dyn.seq = self._next_seq
        self._next_seq += 1
        return dyn

    def _icache_ok(self, pc: int, cycle: int) -> bool:
        """Model fetch-target block accesses; returns False on a miss that
        stalls the rest of this fetch cycle."""
        block = (pc * I_BYTES) // self.config.ft_block_bytes
        if block == self._last_fetch_block:
            return True
        completion = self.memory.fetch(cycle, pc * I_BYTES)
        self._last_fetch_block = block
        if completion > cycle + self.config.memory.l1i_latency:
            self._fetch_stall_until = completion
            return False
        return True

    def _predict(self, dyn: DynamicInstruction):
        """Predict control flow; returns (prediction, mispredicted, redirect)."""
        instr = dyn.instr
        if not instr.is_control or instr.is_halt:
            return None, False, False
        prediction = self.branch_unit.predict(dyn.pc, instr)
        if dyn.wrong_path:
            # No ground truth; fetch follows the prediction.
            return prediction, False, prediction.taken
        mispredicted = self.branch_unit.resolve(
            dyn.pc, instr, prediction, dyn.taken, dyn.next_pc
        )
        redirect = prediction.taken or dyn.taken
        return prediction, mispredicted, redirect

    def _advance_fetch_pc(self, dyn: DynamicInstruction,
                          prediction: Optional[Prediction], mispredicted: bool) -> None:
        if self._wrong_path:
            if prediction is not None and prediction.taken:
                self._wrong_pc = prediction.target  # may be None -> stall
                if self._wrong_pc is None:
                    self._stalled_for_resolve = True
            else:
                self._wrong_pc = dyn.pc + 1
            return
        self._cursor += 1
        if mispredicted:
            # Enter wrong-path mode at the predicted target.
            self._wp_ras_snapshot = self.branch_unit.ras.snapshot()
            self._wrong_path = True
            if prediction is not None and prediction.taken and prediction.target is not None:
                self._wrong_pc = prediction.target
            elif prediction is not None and not prediction.taken:
                self._wrong_pc = dyn.pc + 1
            else:
                self._wrong_pc = None
                self._stalled_for_resolve = True

    # --------------------------------------------------------------------- flush --
    def _flush_from(self, branch_entry: ROBEntry, cycle: int) -> None:
        """Misprediction recovery at branch resolution."""
        seq = branch_entry.seq
        flushed = self.rob.flush_younger(seq)
        self.stats.flushes += 1
        self.stats.flushed_instructions += len(flushed)

        # Restore the SRT by the backward walk over previous ptags.
        for entry in flushed:
            for record in entry.dests:
                self.rename_unit.files[record.file].rat.write(record.slot, record.prev_ptag)
        if self.event_log is not None:
            for entry in flushed:
                self.event_log.on_redefiner_flush(entry)
        if self._checker is not None:
            self._checker.on_flush(flushed, "branch")
        # Scheme reclamation (ATR's two-bit walk lives here).
        self.scheme.on_flush(flushed, cycle)

        # Release scheduling resources.
        self._release_flushed_resources(flushed)

        # Frontend restart on the correct path.
        self._fetch_queue = []
        self._fq_head = 0
        self._wrong_path = False
        self._wrong_pc = None
        self._stalled_for_resolve = False
        self._last_fetch_block = -1
        if self._wp_ras_snapshot is not None:
            self.branch_unit.ras.restore(self._wp_ras_snapshot)
            self._wp_ras_snapshot = None

        # Recovery timing: exact checkpoint vs walk.
        if self.checkpoints.has_exact(seq):
            recovery = self.config.checkpoint_recovery_cycles
        else:
            recovery = max(
                self.config.checkpoint_recovery_cycles,
                (len(flushed) + self.config.recovery_walk_width - 1)
                // self.config.recovery_walk_width,
            )
        self.checkpoints.squash_younger(seq)
        self._fetch_stall_until = cycle + self.config.redirect_penalty + recovery

    def _drop_store_words(self, entry: ROBEntry) -> None:
        for word in self._store_word_addrs(entry):
            seqs = self._store_words.get(word)
            if seqs is not None:
                try:
                    seqs.remove(entry.seq)
                except ValueError:
                    pass
                if not seqs:
                    del self._store_words[word]

    def interrupt_flush(self, cycle: int) -> int:
        """Squash the *speculative* tail of the window for interrupt
        service (paper section 4.1, option (b)) and rewind fetch.

        The flush boundary is the precommit pointer: precommitted
        instructions are guaranteed to commit — an early-release scheme
        may already have freed their previous registers — so they drain
        normally while everything younger is squashed.  The caller (the
        interrupt controller) has established via the open-region counter
        that no ATR claim crosses that boundary; ATR's flush-walk
        assertions enforce it in debug mode.

        Returns the number of squashed instructions.
        """
        boundary_offset = self.rob.precommit_offset
        if len(self.rob) > boundary_offset:
            if boundary_offset > 0:
                boundary_seq = self.rob.at_offset(boundary_offset - 1).seq
            else:
                boundary_seq = self.rob.head().seq - 1
            flushed = self.rob.flush_younger(boundary_seq)
            self.stats.flushes += 1
            self.stats.flushed_instructions += len(flushed)
            for entry in flushed:
                for record in entry.dests:
                    self.rename_unit.files[record.file].rat.write(
                        record.slot, record.prev_ptag
                    )
            if self.event_log is not None:
                for entry in flushed:
                    self.event_log.on_redefiner_flush(entry)
            if self._checker is not None:
                self._checker.on_flush(flushed, "interrupt")
            self.scheme.on_flush(flushed, cycle)
            self._release_flushed_resources(flushed)
            flushed_count = len(flushed)
        else:
            flushed_count = 0

        # Restart fetch after the youngest surviving correct-path
        # instruction (committed or still draining).
        resume = self._last_committed_trace_seq
        for entry in self.rob.in_flight():
            if entry.dyn.trace_seq > resume:
                resume = entry.dyn.trace_seq
        self._fetch_queue = []
        self._fq_head = 0
        self._wrong_path = False
        self._wrong_pc = None
        self._stalled_for_resolve = False
        self._wp_ras_snapshot = None
        self._last_fetch_block = -1
        self._cursor = resume + 1
        self.checkpoints.squash_younger(-1)
        return flushed_count

    def _release_flushed_resources(self, flushed) -> None:
        for entry in flushed:
            if not entry.issued:
                self._rs_used -= 1
            instr = entry.instr
            if instr.is_load:
                self._lq_used -= 1
            if instr.is_store:
                self._sq_used -= 1
                self._stores.pop(entry.seq, None)
                self._drop_store_words(entry)
            for record in entry.dests:
                self._ptag_ready[record.file][record.new_ptag] = True
            self._results.pop(entry.seq, None)
        if flushed:
            flushed_seqs = {e.seq for e in flushed}
            self._store_order = [s for s in self._store_order if s not in flushed_seqs]

    # ------------------------------------------------------------------- queries --
    def architectural_state(self) -> ArchState:
        """Committed architectural state (requires value execution)."""
        if not self.config.execute_values:
            raise RuntimeError("architectural_state requires execute_values=True")
        unit = self.rename_unit
        int_rat = unit.files[RegClass.INT].rat
        vec_rat = unit.files[RegClass.VEC].rat
        int_values = self._values[RegClass.INT]
        vec_values = self._values[RegClass.VEC]
        return ArchState(
            int_regs=tuple(int_values[int_rat.read(ireg(i).srt_slot)] for i in range(16)),
            vec_regs=tuple(vec_values[vec_rat.read(vreg(i).srt_slot)] for i in range(16)),
            flags=int_values[int_rat.read(FLAGS.srt_slot)],
            # Canonical form (zero words dropped) — the same helper the
            # golden-model comparisons apply to the emulator's state.
            memory=canonical_memory(self._mem_values),
        )

    def check_conservation(self) -> None:
        """Free-list conservation: with an empty ROB every allocated ptag is
        exactly an SRT mapping."""
        if len(self.rob) != 0:
            raise RuntimeError("conservation check requires an empty ROB")
        for file in self.rename_unit.files.values():
            file.freelist.check_conservation(file.rat.live_ptags())


def simulate(config: CoreConfig, trace: Trace, max_cycles: Optional[int] = None) -> SimStats:
    """One-call simulation: build a core, run it, return the stats."""
    core = Core(config, trace)
    return core.run(max_cycles=max_cycles)
