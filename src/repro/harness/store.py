"""Persistent result store: content-addressed JSON files on disk.

Layout::

    <root>/                     ~/.cache/repro, or $REPRO_CACHE_DIR
      v-<fingerprint16>/        one generation per code version
        <kind>-<digest16>.json  {"spec": ..., "result": ..., "elapsed": ...}

The *code fingerprint* is a SHA-256 over every ``.py`` source of the
``repro`` package, so editing the simulator silently invalidates the
cache (stale generations stay on disk until ``repro cache clear``).
Writes are atomic (tmp file + rename); corrupt or unreadable entries
read as misses and are removed.  Set ``REPRO_NO_CACHE=1`` to disable the
default store entirely.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Dict, Optional

from .serialize import decode_result, encode_result
from .spec import Spec, spec_digest, spec_to_dict

CACHE_DIR_ENV = "REPRO_CACHE_DIR"
NO_CACHE_ENV = "REPRO_NO_CACHE"
DEFAULT_CACHE_DIR = "~/.cache/repro"

_fingerprint_cache: Dict[str, str] = {}


def cache_root() -> Path:
    return Path(os.environ.get(CACHE_DIR_ENV) or DEFAULT_CACHE_DIR).expanduser()


def code_fingerprint() -> str:
    """SHA-256 of the ``repro`` package sources (cached per process)."""
    package_dir = Path(__file__).resolve().parent.parent
    key = str(package_dir)
    if key not in _fingerprint_cache:
        digest = hashlib.sha256()
        for path in sorted(package_dir.rglob("*.py")):
            digest.update(str(path.relative_to(package_dir)).encode("utf-8"))
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _fingerprint_cache[key] = digest.hexdigest()
    return _fingerprint_cache[key]


class ResultStore:
    """Spec-addressed result cache under one root directory."""

    def __init__(self, root: Optional[Path] = None,
                 fingerprint: Optional[str] = None):
        self.root = Path(root) if root is not None else cache_root()
        self.fingerprint = fingerprint or code_fingerprint()
        self.hits = 0
        self.misses = 0

    # -- paths -------------------------------------------------------------------
    @property
    def generation_dir(self) -> Path:
        return self.root / f"v-{self.fingerprint[:16]}"

    def path_for(self, spec: Spec) -> Path:
        return self.generation_dir / f"{spec.kind}-{spec_digest(spec)[:16]}.json"

    # -- access ------------------------------------------------------------------
    def get(self, spec: Spec):
        """The stored result for *spec*, or None on a miss."""
        path = self.path_for(spec)
        try:
            payload = json.loads(path.read_text())
            result = decode_result(payload["result"])
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, ValueError, KeyError, TypeError):
            # Corrupt entry (interrupted write of an old layout, truncated
            # file): drop it and recompute.
            path.unlink(missing_ok=True)
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, spec: Spec, result, elapsed: Optional[float] = None) -> Path:
        path = self.path_for(spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "spec": spec_to_dict(spec),
            "result": encode_result(result),
            "elapsed": elapsed,
        }
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle)
            os.replace(tmp, path)
        finally:
            # After a successful replace the temp name is gone; anything
            # still there means we are unwinding (including Ctrl-C) and
            # must not leave the orphan behind.  Nothing is caught, so
            # KeyboardInterrupt/SystemExit propagate untouched.
            if os.path.exists(tmp):
                os.unlink(tmp)
        return path

    # -- management --------------------------------------------------------------
    def info(self) -> Dict:
        generations = []
        total_entries = 0
        total_bytes = 0
        if self.root.is_dir():
            for directory in sorted(self.root.glob("v-*")):
                entries = list(directory.glob("*.json"))
                size = sum(p.stat().st_size for p in entries)
                generations.append({
                    "name": directory.name,
                    "entries": len(entries),
                    "bytes": size,
                    "current": directory == self.generation_dir,
                })
                total_entries += len(entries)
                total_bytes += size
        return {
            "root": str(self.root),
            "fingerprint": self.fingerprint,
            "generations": generations,
            "entries": total_entries,
            "bytes": total_bytes,
        }

    def clear(self) -> int:
        """Delete every cached entry (all generations); returns the count."""
        removed = 0
        if not self.root.is_dir():
            return removed
        for directory in self.root.glob("v-*"):
            for path in directory.glob("*.json"):
                path.unlink(missing_ok=True)
                removed += 1
            try:
                directory.rmdir()
            except OSError:
                pass
        return removed


def default_store() -> Optional[ResultStore]:
    """The process-default store, or None when caching is disabled."""
    if os.environ.get(NO_CACHE_ENV, "").lower() in ("1", "true", "yes", "on"):
        return None
    return ResultStore()
