"""Memory hierarchy timing: level latencies, MSHR merging, prefetch."""

import pytest

from repro.memory import (
    CompositePrefetcher,
    HierarchyConfig,
    MemoryHierarchy,
    NextLinePrefetcher,
    StridePrefetcher,
)


def _hierarchy(**overrides):
    config = HierarchyConfig(enable_prefetch=False, **overrides)
    return MemoryHierarchy(config)


class TestLatencies:
    def test_l1_hit_after_fill(self):
        m = _hierarchy()
        first = m.load(0, 0x1000)
        assert first > m.config.l1d_latency  # cold miss
        # wait for the fill to land, then hit
        second = m.load(first + 1, 0x1000)
        assert second == first + 1 + m.config.l1d_latency

    def test_cold_miss_goes_to_dram(self):
        m = _hierarchy()
        completion = m.load(0, 0x2000)
        assert completion >= m.config.llc_latency + m.config.dram_latency

    def test_l2_hit_latency(self):
        m = _hierarchy()
        done = m.load(0, 0x3000)
        # evict from L1 only
        m.l1d.invalidate(0x3000)
        second = m.load(done + 1, 0x3000)
        assert second - (done + 1) == m.config.l1d_latency + m.config.l2_latency

    def test_ifetch_uses_l1i(self):
        m = _hierarchy()
        done = m.fetch(0, 0x100)
        hit = m.fetch(done + 1, 0x100)
        assert hit == done + 1 + m.config.l1i_latency


class TestMshr:
    def test_merge_same_block(self):
        m = _hierarchy()
        first = m.load(0, 0x4000)
        merged = m.load(2, 0x4008)  # same line, still in flight
        assert merged == first
        assert m.mshr_merges == 1

    def test_in_flight_hit_waits_for_fill(self):
        """A 'hit' on a line whose fill is still in flight cannot complete
        before the data arrives (the serial-pointer-chase case)."""
        m = _hierarchy()
        first = m.load(0, 0x5000)
        hit = m.load(5, 0x5000)  # same address: L1 'hits' instantly
        assert hit == max(first, 5 + m.config.l1d_latency)
        assert hit == first

    def test_full_mshr_serializes(self):
        m = _hierarchy(mshr_entries=2)
        m.load(0, 0x10000)
        m.load(0, 0x20000)
        third = m.load(0, 0x30000)
        assert m.mshr_stalls == 1
        assert third > m.config.llc_latency + m.config.dram_latency

    def test_mshr_reaped_after_completion(self):
        m = _hierarchy(mshr_entries=1)
        done = m.load(0, 0x10000)
        # after completion, new misses do not stall
        m.load(done + 1, 0x20000)
        assert m.mshr_stalls == 0


class TestPrefetchTiming:
    def test_prefetch_is_not_instant(self):
        config = HierarchyConfig(enable_prefetch=True)
        m = MemoryHierarchy(config)
        # Train a stride stream from one PC.
        cycle = 0
        completions = []
        for i in range(8):
            done = m.load(cycle, 0x40000 + i * 64, pc=0x10)
            completions.append(done - cycle)
            cycle = done + 1
        # Prefetching must help eventually...
        assert min(completions[3:]) < completions[0]
        # ...but a prefetched line demanded immediately is not free:
        # issue a demand right after the prefetch train starts.
        m2 = MemoryHierarchy(HierarchyConfig(enable_prefetch=True))
        for i in range(3):
            m2.load(i, 0x50000 + i * 64, pc=0x20)
        demanded = m2.load(4, 0x50000 + 4 * 64, pc=0x999)
        assert demanded - 4 > m2.config.l1d_latency + m2.config.l2_latency


class TestPrefetchers:
    def test_stride_detector_needs_confirmation(self):
        p = StridePrefetcher(threshold=2, degree=2)
        assert p.observe(100, pc=1) == []
        assert p.observe(108, pc=1) == []   # stride learned
        assert p.observe(116, pc=1) == []   # confirmed once
        out = p.observe(124, pc=1)          # confident now
        assert out == [132, 140]

    def test_stride_reset_on_change(self):
        p = StridePrefetcher(threshold=1, degree=1)
        p.observe(0, pc=1)
        p.observe(8, pc=1)
        assert p.observe(16, pc=1) == [24]
        assert p.observe(100, pc=1) == []  # broken stride

    def test_next_line(self):
        p = NextLinePrefetcher(line_bytes=64, degree=2)
        assert p.observe(130, pc=0) == [192, 256]

    def test_composite_deduplicates(self):
        p = CompositePrefetcher(line_bytes=64)
        for i in range(4):
            p.observe(i * 64, pc=7)
        out = p.observe(4 * 64, pc=7)
        assert len(out) == len(set(out))


def test_stats_table_structure():
    m = _hierarchy()
    m.load(0, 0)
    table = m.stats_table()
    assert set(table) == {"L1I", "L1D", "L2", "LLC", "DRAM"}
    assert table["L1D"]["accesses"] == 1


def test_dram_row_conflicts_counted():
    m = _hierarchy()
    m.load(0, 0)
    m.load(0, 1 << 20)
    assert m.dram.accesses == 2
    assert m.dram.row_misses >= 1
