"""Deeper pipeline behaviours: recovery timing, the register event log,
frontend limits, and DRAM modeling details."""

import dataclasses

import pytest

from repro.frontend import DynamicInstruction, run_program
from repro.isa import Instruction, Opcode, RegClass, assemble, ireg
from repro.memory import DramModel
from repro.pipeline import Core, ROBEntry, fast_test_config
from repro.pipeline.stats import RegisterEventLog


class TestRecoveryTiming:
    def test_more_flushed_instructions_cost_more_recovery(self, branchy_program):
        """Without an exact checkpoint, recovery walks the ROB; a deeper
        walk must cost more cycles (recovery_walk_width models it)."""
        trace = run_program(branchy_program)
        fast = dataclasses.replace(
            fast_test_config(predictor="always_taken"), recovery_walk_width=64
        )
        slow = dataclasses.replace(
            fast_test_config(predictor="always_taken"), recovery_walk_width=1
        )
        fast_cycles = Core(fast, trace).run().cycles
        slow_cycles = Core(slow, trace).run().cycles
        assert slow_cycles >= fast_cycles

    def test_redirect_penalty_costs_cycles(self, branchy_program):
        trace = run_program(branchy_program)
        cheap = dataclasses.replace(
            fast_test_config(predictor="always_taken"), redirect_penalty=0
        )
        dear = dataclasses.replace(
            fast_test_config(predictor="always_taken"), redirect_penalty=12
        )
        assert Core(dear, trace).run().cycles > Core(cheap, trace).run().cycles

    def test_checkpoints_taken_on_low_confidence(self, branchy_program):
        trace = run_program(branchy_program)
        core = Core(fast_test_config(predictor="tage"), trace)
        core.run()
        # a data-dependent 50/50 branch stream must trigger checkpointing
        assert core.checkpoints.taken > 0


class TestFrontendLimits:
    def test_fetch_width_bounds_throughput(self):
        src = "movi r1, 1\n" + "add r2, r1, r1\n" * 200 + "halt"
        trace = run_program(assemble(src))
        narrow = dataclasses.replace(fast_test_config(), fetch_width=1)
        wide = dataclasses.replace(fast_test_config(), fetch_width=4)
        assert Core(narrow, trace).run().cycles > Core(wide, trace).run().cycles

    def test_frontend_depth_adds_startup_latency(self, loop_trace):
        shallow = dataclasses.replace(fast_test_config(), frontend_depth=1)
        deep = dataclasses.replace(fast_test_config(), frontend_depth=12)
        assert Core(deep, loop_trace).run().cycles > Core(shallow, loop_trace).run().cycles

    def test_icache_disabled_still_correct(self, loop_program):
        from repro.frontend import final_state

        trace = run_program(loop_program)
        config = dataclasses.replace(fast_test_config(), model_icache=False)
        core = Core(config, trace)
        core.run()
        assert core.architectural_state().int_regs == final_state(loop_program).int_regs


class TestEventLog:
    def _entry(self, seq, wrong_path=False):
        instr = Instruction(Opcode.ADD, dests=(ireg(1),), srcs=(ireg(2), ireg(3)))
        dyn = DynamicInstruction(seq=seq, pc=0, instr=instr, next_pc=1,
                                 wrong_path=wrong_path,
                                 trace_seq=-1 if wrong_path else seq)
        return ROBEntry(seq=seq, dyn=dyn, cycle_fetch=0)

    def test_chain_lifecycle(self):
        log = RegisterEventLog()
        log.on_allocate(RegClass.INT, 5, seq=0, cycle=10, wrong_path=False)
        log.on_consume(RegClass.INT, 5, cycle=14)
        log.on_consume(RegClass.INT, 5, cycle=18)
        redefiner = self._entry(3)
        log.on_redefine(RegClass.INT, 5, redefiner, cycle=20)
        log.on_redefiner_precommit(redefiner, cycle=25)
        log.on_redefiner_commit(redefiner, cycle=30)
        assert len(log.records) == 1
        record = log.records[0]
        assert record.alloc_cycle == 10
        assert record.last_consume_cycle == 18
        assert record.consumer_count == 2
        assert record.redefine_cycle == 20
        assert record.redefiner_precommit_cycle == 25
        assert record.redefiner_commit_cycle == 30
        assert record.complete

    def test_flushed_redefiner_reopens_chain(self):
        log = RegisterEventLog()
        log.on_allocate(RegClass.INT, 5, seq=0, cycle=10, wrong_path=False)
        ghost = self._entry(3)
        log.on_redefine(RegClass.INT, 5, ghost, cycle=20)
        log.on_redefiner_flush(ghost)
        real = self._entry(7)
        log.on_redefine(RegClass.INT, 5, real, cycle=40)
        log.on_redefiner_commit(real, cycle=50)
        assert len(log.records) == 1
        assert log.records[0].redefine_cycle == 40

    def test_wrong_path_allocations_ignored(self):
        log = RegisterEventLog()
        log.on_allocate(RegClass.INT, 5, seq=0, cycle=10, wrong_path=True)
        log.on_consume(RegClass.INT, 5, cycle=12)
        assert not log.records
        redefiner = self._entry(3, wrong_path=True)
        log.on_allocate(RegClass.INT, 6, seq=1, cycle=11, wrong_path=False)
        log.on_redefine(RegClass.INT, 6, redefiner, cycle=20)
        assert not redefiner.pending_lifetimes  # wrong-path redefiner ignored


class TestDram:
    def test_row_hit_cheaper_than_row_miss(self):
        dram = DramModel()
        first = dram.access(0)          # opens the row
        hit = dram.access(64)           # same row
        miss = dram.access(1 << 22)     # different row, same bank mapping
        assert hit == dram.latency
        assert first > hit or miss > hit

    def test_accesses_counted(self):
        dram = DramModel()
        dram.access(0)
        dram.access(4096)
        assert dram.accesses == 2


class TestSchemeStatsSurface:
    def test_early_and_total_frees(self, atomic_program):
        trace = run_program(atomic_program)
        core = Core(fast_test_config(rf_size=30, scheme="combined"), trace)
        core.run()
        s = core.scheme.stats
        assert s.early_frees == s.atr_frees + s.nonspec_frees
        assert s.total_frees == s.commit_frees + s.flush_frees + s.early_frees
        assert s.atr_claims >= s.atr_frees - s.flush_frees

    def test_bulk_marking_counted(self, memory_program):
        trace = run_program(memory_program)
        core = Core(fast_test_config(rf_size=40, scheme="atr"), trace)
        core.run()
        s = core.scheme.stats
        assert s.bulk_mark_events > 0
        assert s.bulk_marked_ptags > 0

    def test_claim_consumer_histogram_populated(self, atomic_program):
        trace = run_program(atomic_program)
        core = Core(fast_test_config(rf_size=40, scheme="atr"), trace)
        core.run()
        assert sum(core.scheme.stats.claim_consumers.values()) == \
            core.scheme.stats.atr_claims
