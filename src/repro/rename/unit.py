"""The rename unit: per-file free list + SRT + PRT, and the rename step.

``RenameUnit`` owns one :class:`RenameFile` for the scalar-integer file
(16 GPRs + FLAGS) and one for the vector file, matching the paper's split
register file assumption.  It performs the mechanical part of renaming —
source lookup, destination allocation, SRT update, previous-ptag capture —
while the pluggable release scheme (``repro.rename.schemes``) decides when
ptags return to the free list.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..isa import INT_SRT_SLOTS, VEC_SRT_SLOTS, ArchReg, Instruction, RegClass
from .freelist import FreeList
from .physreg import PhysRegTable
from .rat import RegisterAliasTable


class DestRecord:
    """Rename metadata for one destination of one in-flight instruction.

    ``prev_ptag`` always holds the SRT mapping this rename displaced and is
    used for RAT recovery on a flush.  ``release_prev`` starts equal to it
    and is *invalidated* (set to ``None``) by a scheme that takes ownership
    of freeing that ptag — the paper's double-free avoidance (section
    4.2.4): each ptag is freed by exactly one mechanism.
    """

    __slots__ = ("file", "slot", "new_ptag", "prev_ptag", "release_prev", "new_epoch")

    def __init__(self, file: RegClass, slot: int, new_ptag: int, prev_ptag: int, new_epoch: int):
        self.file = file
        self.slot = slot
        self.new_ptag = new_ptag
        self.prev_ptag = prev_ptag
        self.release_prev: Optional[int] = prev_ptag
        self.new_epoch = new_epoch

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<Dest {self.file.value}[{self.slot}] p{self.new_ptag} "
            f"prev=p{self.prev_ptag} rel={self.release_prev}>"
        )


class RenameFile:
    """One physical register file with its free list, SRT, and PRT."""

    def __init__(self, name: str, arch_slots: int, size: int, counter_bits: int = 3):
        if size < arch_slots + 1:
            raise ValueError(
                f"{name}: physical register file of {size} cannot back {arch_slots} "
                "architectural registers"
            )
        self.name = name
        self.arch_slots = arch_slots
        self.size = size
        self.freelist = FreeList(size)
        # The first arch_slots ptags back the initial architectural state.
        initial = [self.freelist.allocate() for _ in range(arch_slots)]
        self.rat = RegisterAliasTable(arch_slots, initial)
        self.prt = PhysRegTable(size, counter_bits=counter_bits)

    @property
    def free_count(self) -> int:
        return self.freelist.free_count

    def live_srt_ptags(self) -> Tuple[int, ...]:
        return self.rat.live_ptags()


class RenameUnit:
    """Both register files plus the per-instruction rename step."""

    def __init__(
        self,
        int_size: int,
        vec_size: int,
        counter_bits: int = 3,
        reserve: int = 0,
    ):
        """
        Args:
            int_size / vec_size: Physical register count per file.
            counter_bits: PRT consumer counter width.
            reserve: Free-list low-watermark at which rename stalls
                (paper: MAX_DEST x rename width).
        """
        self.files: Dict[RegClass, RenameFile] = {
            RegClass.INT: RenameFile("int", INT_SRT_SLOTS, int_size, counter_bits),
            RegClass.VEC: RenameFile("vec", VEC_SRT_SLOTS, vec_size, counter_bits),
        }
        self.reserve = reserve
        self.stall_cycles = 0

    def file_of(self, reg: ArchReg) -> RenameFile:
        return self.files[reg.cls.file]

    def can_rename(self, instr: Instruction) -> bool:
        """True if the free lists are above the stall watermark for the
        destinations *instr* needs."""
        needs: Dict[RegClass, int] = {}
        for dest in instr.dests:
            file = dest.cls.file
            needs[file] = needs.get(file, 0) + 1
        for file_cls, count in needs.items():
            if self.files[file_cls].free_count - count < self.reserve:
                return False
        return True

    def lookup_sources(self, instr: Instruction) -> List[Tuple[RegClass, int, int]]:
        """SRT lookup of every source operand, in operand order.

        Returns (file class, SRT slot, ptag) triples; the slot is needed by
        ATR's two-bit flush walk, which matches sources by architectural
        register.
        """
        out = []
        for src in instr.srcs:
            file_cls = src.cls.file
            file = self.files[file_cls]
            slot = src.srt_slot
            out.append((file_cls, slot, file.rat.read(slot)))
        return out

    def allocate_dests(self, instr: Instruction, cycle: int, seq: int) -> List[DestRecord]:
        """Allocate a new ptag per destination and update the SRT.

        Caller must have checked :meth:`can_rename`.
        """
        records = []
        for dest in instr.dests:
            file = self.files[dest.cls.file]
            new_ptag = file.freelist.allocate()
            file.prt.on_allocate(new_ptag, cycle, seq)
            prev = file.rat.write(dest.srt_slot, new_ptag)
            records.append(
                DestRecord(
                    file=dest.cls.file,
                    slot=dest.srt_slot,
                    new_ptag=new_ptag,
                    prev_ptag=prev,
                    new_epoch=file.prt.epoch(new_ptag),
                )
            )
        return records

    def srt_snapshots(self) -> tuple:
        """(int, vec) SRT snapshots, for checkpoints."""
        return (
            self.files[RegClass.INT].rat.snapshot(),
            self.files[RegClass.VEC].rat.snapshot(),
        )

    def restore_srt(self, snapshots: tuple) -> None:
        self.files[RegClass.INT].rat.restore(snapshots[0])
        self.files[RegClass.VEC].rat.restore(snapshots[1])

    def all_live_srt_ptags(self):
        """Iterate (file_class, ptag) over every current SRT mapping."""
        for file_cls, file in self.files.items():
            for ptag in file.rat.live_ptags():
                yield file_cls, ptag
