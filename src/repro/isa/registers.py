"""Architectural register model.

The reproduction ISA mirrors the register structure the paper assumes for a
modern x86 core: a scalar integer register file (16 general-purpose
registers), a dedicated FLAGS register that is renamed like any other
destination (the paper's omnetpp example writes ``ZPS``), and a separate
vector register file (16 registers) renamed through its own SRT and physical
register table (paper section 4.2.1 assumes split scalar/vector files).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

#: Number of general-purpose integer registers.
NUM_INT_REGS = 16
#: Number of vector registers.
NUM_VEC_REGS = 16
#: Number of lanes in a vector register (256-bit of 64-bit lanes).
VEC_LANES = 4


class RegClass(enum.Enum):
    """Register class; each class is renamed through its own SRT and PRF.

    ``FLAGS`` shares the integer physical register file (as on Intel cores,
    where the flags result is carried with the integer ptag), so scheme
    logic only distinguishes ``INT``-file and ``VEC``-file registers.
    """

    # Identity hash: members are singletons and this class keys the hottest
    # dicts in the machine (values, ptag_ready, rename files, waiters).
    __hash__ = object.__hash__

    INT = "int"
    VEC = "vec"
    FLAGS = "flags"

    @property
    def file(self) -> "RegClass":
        """The physical register file this class allocates from."""
        return RegClass.INT if self is RegClass.FLAGS else self


@dataclass(frozen=True, order=True)
class ArchReg:
    """An architectural register: a (class, index) pair.

    Instances are interned via the module-level constructors (:func:`ireg`,
    :func:`vreg`, :data:`FLAGS`), so identity comparison is safe, but
    equality is structural.
    """

    cls: RegClass
    index: int

    def __post_init__(self) -> None:
        limit = {
            RegClass.INT: NUM_INT_REGS,
            RegClass.VEC: NUM_VEC_REGS,
            RegClass.FLAGS: 1,
        }[self.cls]
        if not 0 <= self.index < limit:
            raise ValueError(f"register index {self.index} out of range for {self.cls}")

    @property
    def name(self) -> str:
        if self.cls is RegClass.FLAGS:
            return "flags"
        prefix = "r" if self.cls is RegClass.INT else "v"
        return f"{prefix}{self.index}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return self.name

    @property
    def srt_slot(self) -> int:
        """Flat slot index within the SRT of this register's file.

        The integer-file SRT holds the 16 GPRs followed by FLAGS
        (slot 16); the vector-file SRT holds the 16 vector registers.
        """
        if self.cls is RegClass.FLAGS:
            return NUM_INT_REGS
        return self.index


def ireg(index: int) -> ArchReg:
    """Integer GPR ``r<index>``."""
    return _INT_REGS[index]


def vreg(index: int) -> ArchReg:
    """Vector register ``v<index>``."""
    return _VEC_REGS[index]


_INT_REGS = tuple(ArchReg(RegClass.INT, i) for i in range(NUM_INT_REGS))
_VEC_REGS = tuple(ArchReg(RegClass.VEC, i) for i in range(NUM_VEC_REGS))

#: The single FLAGS register (paper: ``ZPS``).
FLAGS = ArchReg(RegClass.FLAGS, 0)

#: Number of SRT slots in the integer file (GPRs + FLAGS).
INT_SRT_SLOTS = NUM_INT_REGS + 1
#: Number of SRT slots in the vector file.
VEC_SRT_SLOTS = NUM_VEC_REGS


def parse_reg(name: str) -> ArchReg:
    """Parse a register name (``r3``, ``v11``, ``flags``) into an ArchReg."""
    name = name.strip().lower()
    if name == "flags":
        return FLAGS
    if len(name) >= 2 and name[0] in ("r", "v") and name[1:].isdigit():
        index = int(name[1:])
        try:
            return ireg(index) if name[0] == "r" else vreg(index)
        except IndexError:
            raise ValueError(f"register index out of range: {name!r}") from None
    raise ValueError(f"not a register name: {name!r}")


def all_arch_regs() -> tuple:
    """All architectural registers, in SRT order (int GPRs, flags, vec)."""
    return _INT_REGS + (FLAGS,) + _VEC_REGS
