"""Speculative Renaming Table (SRT / RAT) and checkpointing.

One table per physical register file.  The integer-file table has 17 slots
(16 GPRs + FLAGS), the vector-file table has 16.  Checkpoints snapshot the
full mapping; recovery either restores a checkpoint taken at the flushing
branch or restores the nearest older checkpoint / walks the ROB backward
re-applying ``previous ptag`` fields (paper section 4.2.1).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple


class RegisterAliasTable:
    """Architectural-slot -> ptag mapping for one register file."""

    def __init__(self, slots: int, initial_ptags: Optional[List[int]] = None):
        if initial_ptags is None:
            initial_ptags = list(range(slots))
        if len(initial_ptags) != slots:
            raise ValueError("initial mapping size mismatch")
        self.slots = slots
        self._map: List[int] = list(initial_ptags)

    def read(self, slot: int) -> int:
        return self._map[slot]

    def write(self, slot: int, ptag: int) -> int:
        """Install *ptag*; returns the previous mapping."""
        prev = self._map[slot]
        self._map[slot] = ptag
        return prev

    def snapshot(self) -> Tuple[int, ...]:
        return tuple(self._map)

    def restore(self, snap: Tuple[int, ...]) -> None:
        if len(snap) != self.slots:
            raise ValueError("snapshot size mismatch")
        self._map = list(snap)

    def live_ptags(self) -> Tuple[int, ...]:
        """All ptags currently referenced by an architectural slot."""
        return tuple(self._map)

    def __iter__(self):
        return iter(self._map)


class CheckpointPool:
    """A bounded pool of SRT checkpoints keyed by branch sequence number.

    Real hardware checkpoints the SRT only on low-confidence branches
    because checkpoint storage is expensive; recovery from an
    un-checkpointed branch restores the nearest older checkpoint and walks
    the ROB forward, which takes extra cycles.  The pool tracks enough to
    model that timing; functional recovery in the simulator always uses
    the ROB walk (provably equivalent), so checkpoints here only carry
    timing information.
    """

    def __init__(self, capacity: int = 8):
        self.capacity = capacity
        # Ordered oldest..youngest: (branch_seq, snapshots tuple)
        self._checkpoints: List[Tuple[int, tuple]] = []
        self.taken = 0
        self.overflowed = 0

    def __len__(self) -> int:
        return len(self._checkpoints)

    def take(self, branch_seq: int, snapshots: tuple) -> bool:
        """Checkpoint at *branch_seq*; returns False if the pool is full."""
        if len(self._checkpoints) >= self.capacity:
            self.overflowed += 1
            return False
        self._checkpoints.append((branch_seq, snapshots))
        self.taken += 1
        return True

    def has_exact(self, branch_seq: int) -> bool:
        return any(seq == branch_seq for seq, _ in self._checkpoints)

    def nearest_older(self, branch_seq: int) -> Optional[Tuple[int, tuple]]:
        """Youngest checkpoint at or older than *branch_seq*."""
        best = None
        for seq, snap in self._checkpoints:
            if seq <= branch_seq and (best is None or seq > best[0]):
                best = (seq, snap)
        return best

    def release_older_equal(self, seq: int) -> int:
        """Free checkpoints for branches at or older than *seq* (they
        resolved); returns how many were released."""
        before = len(self._checkpoints)
        self._checkpoints = [(s, snap) for s, snap in self._checkpoints if s > seq]
        return before - len(self._checkpoints)

    def squash_younger(self, seq: int) -> int:
        """Drop checkpoints younger than *seq* (their branches flushed)."""
        before = len(self._checkpoints)
        self._checkpoints = [(s, snap) for s, snap in self._checkpoints if s <= seq]
        return before - len(self._checkpoints)
