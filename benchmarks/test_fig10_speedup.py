"""Figure 10: scheme speedups over baseline at 64 and 224 registers."""

from repro.experiments import fig10

from conftest import emit


def test_fig10_speedup(benchmark, int_suite, fp_suite, instructions):
    result = benchmark.pedantic(
        fig10.run,
        kwargs=dict(int_benchmarks=int_suite, fp_benchmarks=fp_suite,
                    sizes=(64, 224), instructions=instructions),
        rounds=1, iterations=1,
    )
    emit(result)
    # Shape checks mirroring the paper's ordering at 64 registers:
    # every scheme helps on average, nonspec-ER > ATR on the int suite,
    # combined >= max(atr, nonspec) per suite, and gains shrink at 224.
    for which in ("int", "fp"):
        atr = result.average(which, 64, "atr")
        nonspec = result.average(which, 64, "nonspec_er")
        combined = result.average(which, 64, "combined")
        assert atr > -0.01
        assert nonspec > -0.01
        assert combined >= min(atr, nonspec) - 0.01
        assert result.average(which, 224, "atr") <= atr + 0.02
