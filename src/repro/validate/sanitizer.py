"""Online invariant sanitizer for the cycle core.

The golden-model equivalence test catches an unsafe early release only if
the corrupted value survives into the *final* architectural state; the
conservation check only fires at end of run.  This checker enforces the
safety argument *per event*, the way RegionTrack-style online monitors
do, so the first bad transition fails the run at the cycle it happens,
with the register, the instruction, and a ring buffer of recent pipeline
events attached.

Enforced invariants:

* **Use-after-release** (the ATR property): no instruction may rename a
  consumer of, issue a read of, or write back to a physical register
  that is on the free list — or that was reallocated (epoch changed)
  between rename and the access.
* **Consumer-count non-negativity**: a consumer-tracking scheme never
  decrements a zero counter (the PRT clamps silently; the sanitizer
  makes it loud).
* **Free-list conservation at every ROB-empty point**, not just at end
  of run.
* **Occupancy bounds**: RS/LQ/SQ usage stays within ``[0, size]`` every
  cycle.
* **Precommit-pointer monotonicity**: instructions precommit in age
  order, and a flush never squashes a precommitted instruction (the
  boundary interrupt flushes rely on).

The checker is a :class:`~repro.pipeline.probes.Probe` over the public
:class:`~repro.pipeline.state.PipelineState`; it is attached by
``CoreConfig.check_invariants=True`` (or ``core.add_probe``) and costs
nothing when detached — an unprobed core pays a single ``is None`` test
per emission site.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from ..pipeline.probes import Probe
from ..rename.errors import RenameError
from ..rename.schemes.tracking import ConsumerTrackingScheme
from .snapshot import format_snapshot, pipeline_snapshot

#: Default depth of the recent-event ring buffer.
RING_SIZE = 48


class InvariantViolation(RenameError):
    """A pipeline invariant failed; carries full diagnostic context.

    Attributes:
        kind: Machine-readable violation slug (``use-after-release``, …).
        cycle: Simulation cycle of the violating event.
        seq: Dynamic sequence number of the violating instruction (or -1).
        file: Register-file name (``int`` / ``vec``) when register-related.
        ptag: Offending physical register when register-related.
        snapshot: :func:`~repro.validate.snapshot.pipeline_snapshot` dict,
            including the recent-event ring.
    """

    def __init__(self, kind: str, message: str, cycle: int, seq: int = -1,
                 file: Optional[str] = None, ptag: Optional[int] = None,
                 snapshot: Optional[Dict] = None):
        super().__init__(message)
        self.kind = kind
        self.message = message
        self.cycle = cycle
        self.seq = seq
        self.file = file
        self.ptag = ptag
        self.snapshot = snapshot

    def __str__(self) -> str:
        where = f" [{self.file} p{self.ptag}]" if self.ptag is not None else ""
        text = (f"invariant violation ({self.kind}) at cycle {self.cycle}, "
                f"seq {self.seq}{where}: {self.message}")
        if self.snapshot is not None:
            text += "\n" + format_snapshot(self.snapshot)
        return text


class EventRing:
    """Bounded ring of recent pipeline events, for violation reports."""

    def __init__(self, size: int = RING_SIZE):
        self._events: Deque[Tuple[int, str]] = deque(maxlen=size)

    def record(self, cycle: int, text: str) -> None:
        self._events.append((cycle, text))

    def formatted(self) -> List[str]:
        return [f"c{cycle:<6} {text}" for cycle, text in self._events]

    def __len__(self) -> int:
        return len(self._events)


class InvariantChecker(Probe):
    """Per-event invariant enforcement over one core's run.

    Accepts a :class:`~repro.pipeline.state.PipelineState` or a
    :class:`~repro.pipeline.core.Core` (its state is used).
    """

    def __init__(self, state, ring_size: int = RING_SIZE):
        self.state = getattr(state, "state", state)
        self.ring = EventRing(ring_size)
        self.checked_events = 0
        #: seq -> PRT epochs of every source ptag, captured at rename.
        self._src_epochs: Dict[int, Tuple[int, ...]] = {}
        self._last_precommit_seq = -1
        self._last_commit_seq = -1
        self._rob_was_occupied = False
        self._tracks_consumers = isinstance(self.state.scheme,
                                            ConsumerTrackingScheme)

    # -- failure -----------------------------------------------------------------
    def _fail(self, kind: str, message: str, seq: int = -1,
              file_cls=None, ptag: Optional[int] = None) -> None:
        raise InvariantViolation(
            kind=kind,
            message=message,
            cycle=self.state.cycle,
            seq=seq,
            file=file_cls.value if file_cls is not None else None,
            ptag=ptag,
            snapshot=pipeline_snapshot(self.state),
        )

    # -- rename ------------------------------------------------------------------
    def on_rename_sources(self, entry, cycle: int) -> None:
        """After SRT lookup, before destination allocation: every source
        mapping must be a live (allocated) physical register."""
        self.checked_events += 1
        files = self.state.rename_unit.files
        epochs = []
        for file_cls, _slot, ptag in entry.src_ptags:
            file = files[file_cls]
            if file.freelist.is_free(ptag):
                released = file.prt.entries[ptag].early_released
                self._fail(
                    "use-after-release",
                    f"renamed a consumer of {file_cls.value} p{ptag}, which "
                    f"is on the free list"
                    f"{' (early released)' if released else ''} — "
                    f"instruction #{entry.seq} {entry.instr.opcode.name} "
                    f"pc={entry.dyn.pc}",
                    seq=entry.seq, file_cls=file_cls, ptag=ptag)
            epochs.append(file.prt.epoch(ptag))
        self._src_epochs[entry.seq] = tuple(epochs)

    def on_rename(self, entry, cycle: int) -> None:
        """After the full rename step: destinations must be live."""
        files = self.state.rename_unit.files
        for record in entry.dests:
            if files[record.file].freelist.is_free(record.new_ptag):
                self._fail(
                    "allocation-corrupt",
                    f"freshly allocated {record.file.value} p{record.new_ptag} "
                    f"is still on the free list",
                    seq=entry.seq, file_cls=record.file, ptag=record.new_ptag)
        wp = " WP" if entry.wrong_path else ""
        self.ring.record(cycle,
                         f"rename #{entry.seq} {entry.instr.opcode.name}{wp}")

    # -- issue -------------------------------------------------------------------
    def on_issue(self, entry, cycle: int) -> None:
        """Fires before the scheme's issue hook: sources are about to be
        read, consumer counts not yet decremented."""
        self.checked_events += 1
        files = self.state.rename_unit.files
        epochs = self._src_epochs.pop(entry.seq, None)
        for index, (file_cls, _slot, ptag) in enumerate(entry.src_ptags):
            file = files[file_cls]
            if self._tracks_consumers and not entry.wrong_path:
                e = file.prt.entries[ptag]
                if e.consumer_count == 0:
                    self._fail(
                        "consumer-underflow",
                        f"issue of #{entry.seq} {entry.instr.opcode.name} "
                        f"would decrement the zero consumer count of "
                        f"{file_cls.value} p{ptag}",
                        seq=entry.seq, file_cls=file_cls, ptag=ptag)
            if entry.wrong_path:
                continue  # wrong-path reads of garbage are architecturally moot
            if file.freelist.is_free(ptag):
                self._fail(
                    "use-after-release",
                    f"instruction #{entry.seq} {entry.instr.opcode.name} "
                    f"pc={entry.dyn.pc} read {file_cls.value} p{ptag} while "
                    f"it is on the free list",
                    seq=entry.seq, file_cls=file_cls, ptag=ptag)
            if epochs is not None and file.prt.epoch(ptag) != epochs[index]:
                self._fail(
                    "use-after-release",
                    f"instruction #{entry.seq} {entry.instr.opcode.name} "
                    f"pc={entry.dyn.pc} read {file_cls.value} p{ptag} after "
                    f"it was released and reallocated (epoch "
                    f"{epochs[index]} -> {file.prt.epoch(ptag)})",
                    seq=entry.seq, file_cls=file_cls, ptag=ptag)
        self.ring.record(cycle, f"issue #{entry.seq}")

    # -- writeback ---------------------------------------------------------------
    def on_writeback(self, entry, cycle: int) -> None:
        self.checked_events += 1
        files = self.state.rename_unit.files
        for record in entry.dests:
            file = files[record.file]
            if file.freelist.is_free(record.new_ptag):
                self._fail(
                    "use-after-release",
                    f"instruction #{entry.seq} wrote back to "
                    f"{record.file.value} p{record.new_ptag} while it is on "
                    f"the free list (released before its value was ready)",
                    seq=entry.seq, file_cls=record.file, ptag=record.new_ptag)
            if file.prt.epoch(record.new_ptag) != record.new_epoch:
                self._fail(
                    "use-after-release",
                    f"instruction #{entry.seq} wrote back to "
                    f"{record.file.value} p{record.new_ptag} after it was "
                    f"released and reallocated",
                    seq=entry.seq, file_cls=record.file, ptag=record.new_ptag)
        self.ring.record(cycle, f"writeback #{entry.seq}")

    # -- precommit / commit ------------------------------------------------------
    def on_precommit(self, entry, cycle: int) -> None:
        self.checked_events += 1
        if entry.seq <= self._last_precommit_seq:
            self._fail(
                "precommit-order",
                f"precommit pointer moved backwards: #{entry.seq} after "
                f"#{self._last_precommit_seq}",
                seq=entry.seq)
        self._last_precommit_seq = entry.seq
        self.ring.record(cycle, f"precommit #{entry.seq}")

    def on_commit(self, entry, cycle: int) -> None:
        self.checked_events += 1
        if entry.seq <= self._last_commit_seq:
            self._fail(
                "commit-order",
                f"commit out of age order: #{entry.seq} after "
                f"#{self._last_commit_seq}",
                seq=entry.seq)
        self._last_commit_seq = entry.seq
        self._src_epochs.pop(entry.seq, None)
        self.ring.record(cycle,
                         f"commit #{entry.seq} {entry.instr.opcode.name}")

    # -- flush -------------------------------------------------------------------
    def on_flush(self, flushed, kind: str, cycle: int) -> None:
        self.checked_events += 1
        for entry in flushed:
            if entry.precommitted:
                self._fail(
                    "flush-past-precommit",
                    f"{kind} flush squashed precommitted instruction "
                    f"#{entry.seq} {entry.instr.opcode.name} — the precommit "
                    f"boundary guarantees it would commit",
                    seq=entry.seq)
            self._src_epochs.pop(entry.seq, None)
        self.ring.record(cycle,
                         f"{kind}-flush squashed {len(flushed)}")

    # -- releases ----------------------------------------------------------------
    def on_early_release(self, file_cls, ptag: int, cycle: int) -> None:
        self.ring.record(cycle, f"early-release {file_cls.value} p{ptag}")

    # -- per-cycle ---------------------------------------------------------------
    def on_cycle_end(self, cycle: int) -> None:
        state = self.state
        config = state.config
        if not 0 <= state.rs_used <= config.rs_size:
            self._fail("occupancy", f"RS occupancy {state.rs_used} outside "
                                    f"[0, {config.rs_size}]")
        if not 0 <= state.lq_used <= config.lq_size:
            self._fail("occupancy", f"LQ occupancy {state.lq_used} outside "
                                    f"[0, {config.lq_size}]")
        if not 0 <= state.sq_used <= config.sq_size:
            self._fail("occupancy", f"SQ occupancy {state.sq_used} outside "
                                    f"[0, {config.sq_size}]")
        rob_len = len(state.rob)
        if not 0 <= state.rob.precommit_offset <= rob_len:
            self._fail("precommit-order",
                       f"precommit offset {state.rob.precommit_offset} outside "
                       f"ROB occupancy {rob_len}")
        if rob_len == 0:
            if self._rob_was_occupied:
                self._rob_was_occupied = False
                self.check_conservation()
        else:
            self._rob_was_occupied = True

    def check_conservation(self) -> None:
        """Free-list conservation, converted to a structured violation."""
        try:
            self.state.check_conservation()
        except AssertionError as exc:
            self._fail("conservation",
                       f"free-list conservation failed at ROB-empty point: "
                       f"{exc}")
