"""Pipeline behaviour tests: timing sanity, stalls, flushes, config."""

import dataclasses

import pytest

from repro.frontend import final_state, run_program
from repro.isa import RegClass, assemble
from repro.pipeline import Core, CoreConfig, DeadlockError, fast_test_config, golden_cove_config
from repro.workloads import synthesize, PROFILES


def _simulate(program, **config_kwargs):
    trace = run_program(program)
    extra = {k: v for k, v in config_kwargs.items() if k in ("rf_size", "scheme", "predictor")}
    config = fast_test_config(**extra)
    rest = {k: v for k, v in config_kwargs.items() if k not in extra}
    if rest:
        config = dataclasses.replace(config, **rest)
    core = Core(config, trace)
    stats = core.run()
    return core, stats


class TestTimingSanity:
    def test_dependent_chain_is_serial(self):
        src = "movi r1, 1\n" + "add r1, r1, r1\n" * 30 + "halt"
        core, stats = _simulate(assemble(src))
        # 30 dependent 1-cycle adds: at least 30 cycles end to end
        assert stats.cycles >= 30

    def test_independent_ops_overlap(self):
        dependent = "movi r1, 1\n" + "add r1, r1, r1\n" * 24 + "halt"
        independent = "movi r1, 1\n" + "".join(
            f"add r{2 + (i % 6)}, r1, r1\n" for i in range(24)
        ) + "halt"
        _, dep_stats = _simulate(assemble(dependent))
        _, ind_stats = _simulate(assemble(independent))
        assert ind_stats.cycles < dep_stats.cycles

    def test_ipc_bounded_by_width(self):
        src = "movi r1, 1\n" + "add r2, r1, r1\nadd r3, r1, r1\n" * 40 + "halt"
        _, stats = _simulate(assemble(src))
        assert stats.ipc <= 4.0  # fast config rename width

    def test_cache_miss_slower_than_hit(self):
        hit = """
            movi r1, 4096
            movi r2, 20
            movi r3, 1
        loop:
            ld r4, r1, 0
            sub r2, r2, r3
            test r2, r2
            bne loop
            halt
        """
        miss = """
            movi r1, 4096
            movi r5, 8192
            movi r2, 20
            movi r3, 1
        loop:
            ld r4, r1, 0
            add r1, r1, r5
            sub r2, r2, r3
            test r2, r2
            bne loop
            halt
        """
        from repro.memory import HierarchyConfig
        no_prefetch = HierarchyConfig(enable_prefetch=False)
        _, hit_stats = _simulate(assemble(hit), memory=no_prefetch)
        _, miss_stats = _simulate(assemble(miss), memory=no_prefetch)
        assert miss_stats.cycles > hit_stats.cycles * 1.3

    def test_commit_cycle_counts_match(self, loop_trace):
        core = Core(fast_test_config(), loop_trace)
        stats = core.run()
        assert stats.committed == len(loop_trace)


class TestStalls:
    def test_small_rf_causes_freelist_stalls(self, atomic_program):
        core_small, small = _simulate(atomic_program, rf_size=26)
        core_big, big = _simulate(atomic_program, rf_size=64)
        assert small.stall_freelist > 0
        assert big.ipc >= small.ipc

    def test_reserve_watermark_never_breached(self, atomic_program):
        core, _ = _simulate(atomic_program, rf_size=26)
        for file in core.rename_unit.files.values():
            assert file.freelist.min_free_watermark >= 0

    def test_tiny_rf_rejected(self):
        with pytest.raises(ValueError):
            fast_test_config(rf_size=18)


class TestMisprediction:
    def test_forced_mispredicts_flush(self, branchy_program):
        core, stats = _simulate(branchy_program, predictor="always_taken")
        assert stats.flushes > 0
        assert stats.wrong_path_renamed > 0

    def test_perfect_story_fewer_flushes_with_tage(self, branchy_program):
        _, bad = _simulate(branchy_program, predictor="always_taken")
        _, good = _simulate(branchy_program, predictor="tage")
        assert good.ipc >= bad.ipc

    def test_wrong_path_instructions_never_commit(self, branchy_program):
        trace = run_program(branchy_program)
        core = Core(fast_test_config(predictor="always_taken"), trace)
        stats = core.run()
        assert stats.committed == len(trace)

    def test_architectural_state_survives_flushes(self, branchy_program):
        golden = final_state(branchy_program)
        core, _ = _simulate(branchy_program, predictor="always_not_taken")
        state = core.architectural_state()
        assert state.int_regs == golden.int_regs


class TestStoreLoadForwarding:
    def test_store_to_load_value(self):
        src = """
            movi r1, 4096
            movi r2, 77
            st r2, r1, 0
            ld r3, r1, 0
            add r4, r3, r3
            halt
        """
        core, _ = _simulate(assemble(src))
        assert core.architectural_state().int_regs[3] == 77
        assert core.architectural_state().int_regs[4] == 154

    def test_load_does_not_bypass_older_conflicting_store(self):
        src = """
            movi r1, 4096
            movi r2, 5
            st r2, r1, 0
            movi r2, 9
            st r2, r1, 0
            ld r3, r1, 0
            halt
        """
        core, _ = _simulate(assemble(src))
        assert core.architectural_state().int_regs[3] == 9


class TestEndConditions:
    def test_conservation_check_runs(self, loop_trace):
        core = Core(fast_test_config(scheme="combined"), loop_trace)
        core.run()
        core.check_conservation()  # must not raise

    def test_conservation_requires_empty_rob(self, loop_trace):
        core = Core(fast_test_config(), loop_trace)
        for _ in range(30):  # get instructions in flight
            core.cycle += 1
            core.step()
        with pytest.raises(RuntimeError):
            core.check_conservation()

    def test_max_cycles_deadlock_detection(self, loop_trace):
        core = Core(fast_test_config(), loop_trace)
        with pytest.raises(DeadlockError):
            core.run(max_cycles=3)

    def test_truncated_trace_drains(self, branchy_program):
        trace = run_program(branchy_program)
        trace.entries = trace.entries[:50]  # no trailing halt
        core = Core(fast_test_config(), trace)
        stats = core.run()
        assert stats.committed == 50

    def test_architectural_state_requires_values(self, loop_trace):
        config = dataclasses.replace(fast_test_config(), execute_values=False)
        core = Core(config, loop_trace)
        core.run()
        with pytest.raises(RuntimeError):
            core.architectural_state()


class TestConfig:
    def test_golden_cove_matches_table1(self):
        config = golden_cove_config()
        assert config.fetch_width == 6
        assert config.retire_width == 8
        assert config.rob_size == 512
        assert config.rs_size == 160
        assert config.lq_size == 96
        assert config.sq_size == 64
        assert config.alu_ports == 5
        assert config.load_ports == 3
        assert config.store_ports == 2
        assert config.memory.l1d_size == 48 * 1024
        assert config.memory.l2_latency == 14
        assert config.memory.llc_latency == 40

    def test_with_rf_size(self):
        config = golden_cove_config().with_rf_size(64)
        assert config.int_rf_size == 64
        assert config.vec_rf_size == 64

    def test_with_scheme(self):
        config = golden_cove_config().with_scheme("atr", redefine_delay=2)
        assert config.scheme == "atr"
        assert config.redefine_delay == 2

    def test_freelist_reserve_rule(self):
        config = golden_cove_config()
        assert config.freelist_reserve == config.max_dests_per_instr * config.rename_width

    def test_unknown_predictor_rejected(self, loop_trace):
        config = dataclasses.replace(fast_test_config(), predictor="psychic")
        with pytest.raises(ValueError):
            Core(config, loop_trace)


class TestTimeline:
    def test_stage_order_per_instruction(self, atomic_program):
        trace = run_program(atomic_program)
        config = dataclasses.replace(fast_test_config(), record_timeline=True)
        core = Core(config, trace)
        core.run()
        assert len(core.timeline) == len(trace)
        for _seq, _pc, rename, issue, complete, precommit, commit in core.timeline:
            assert rename <= issue <= complete <= commit
            assert precommit <= commit
