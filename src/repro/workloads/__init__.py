"""Workloads: SPEC-named kernels, suite registry, synthesis, SimPoints."""

from . import kernels_fp, kernels_int
from .simpoint import (
    SimPoint,
    basic_block_vectors,
    kmeans,
    pick_simpoints,
    slice_trace,
    weighted_mean,
)
from .suite import (
    ALL_BENCHMARKS,
    SPEC_FP,
    SPEC_INT,
    WORKLOADS,
    Workload,
    WorkloadVariant,
    build_suite,
    build_trace,
    builder_for,
    clear_trace_cache,
    is_fp,
    resolve,
    split_variant,
    workload_for,
    workload_names,
)
from .synthesis import PROFILES, WorkloadProfile, synthesize

__all__ = [
    "SPEC_INT", "SPEC_FP", "ALL_BENCHMARKS",
    "WORKLOADS", "Workload", "WorkloadVariant",
    "build_trace", "build_suite", "builder_for", "resolve", "is_fp",
    "split_variant", "workload_for", "workload_names",
    "clear_trace_cache",
    "WorkloadProfile", "synthesize", "PROFILES",
    "SimPoint", "basic_block_vectors", "kmeans", "pick_simpoints",
    "slice_trace", "weighted_mean",
    "kernels_int", "kernels_fp",
]
