"""Differential soundness oracle: pipeline releases vs. static proof.

The runtime ATR scheme claims a previous physical-register mapping at
rename time and may then free it *out of order*.  The claim is legal
exactly when the def→redef window is an atomic region, and — because
direct ``JMP``/``CALL`` never mispredict in this machine while every
stream-forking instruction is itself a region breaker — every window the
runtime can legally claim lies on the deterministic static chain that
:func:`repro.staticcheck.regions.analyze_regions` enumerates.  The probe
below therefore checks, for every early release the scheme performs:

* the released ptag carries an outstanding **claim** (the ``claim``
  probe event names ATR takeovers; the combined scheme's nonspec-ER
  releases are unclaimed and are ignored — under the pure ``atr``
  scheme an unclaimed early release is itself a violation);
* the claim's ``(file, SRT slot, def_pc, redef_pc)`` is a
  statically-proven **atomic** window of the program (initial SRT
  mappings have ``def_pc = None`` and match the virtual entry windows).

Claim records follow ptag lifetimes through flushes: a record survives
until its ptag is released, re-claimed, or reallocated (``on_allocate``
drops stale state), which keeps attribution exact across the flush
walk's drain of in-flight redefinition signals.

``compare_branch_free`` is the second oracle leg: on branch-free,
single-execution programs the static chain walk and the dynamic
:func:`~repro.analysis.regions.classify_regions` must agree window for
window — location, consumer count, and classification.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from ..frontend import Trace, run_program
from ..isa import Program, RegClass
from ..pipeline import Core
from ..pipeline.config import fast_test_config
from ..pipeline.probes import Probe
from .regions import StaticRegionReport, analyze_regions

#: Schemes that perform ATR claims (and so can be oracle-checked).
ATR_SCHEMES = ("atr", "combined")


@dataclass(frozen=True)
class AtrViolation:
    """One unsound early release observed by the probe."""

    file: RegClass
    ptag: int
    slot: Optional[int]
    def_pc: Optional[int]
    redef_pc: Optional[int]
    cycle: int
    reason: str

    def __str__(self) -> str:
        where = (f"slot {self.slot} def@{self.def_pc} redef@{self.redef_pc}"
                 if self.slot is not None else "no claim outstanding")
        return (f"unsound ATR release of {self.file.value} p{self.ptag} "
                f"at cycle {self.cycle} ({where}): {self.reason}")


class AtrSoundnessProbe(Probe):
    """Probe asserting every ATR release matches a static atomic window.

    Pure event-layer observer: attach with ``core.add_probe`` — no core
    or scheme internals are touched.
    """

    def __init__(self, program: Program,
                 report: Optional[StaticRegionReport] = None,
                 strict_unclaimed: bool = False):
        self.program = program
        self.report = report if report is not None else analyze_regions(program)
        self.atomic_keys: FrozenSet[Tuple] = self.report.atomic_keys()
        #: Under the pure ``atr`` scheme every early release must carry a
        #: claim; the combined scheme also early-releases via nonspec-ER.
        self.strict_unclaimed = strict_unclaimed
        self.violations: List[AtrViolation] = []
        self.releases_seen = 0
        self.atr_releases = 0
        self.claims_seen = 0
        # ptag -> pc of the instruction that allocated it (def site).
        self._def_pc: Dict[Tuple[RegClass, int], int] = {}
        # Potential claims of the entry being renamed right now:
        # displaced prev ptag -> (SRT slot, redefiner pc).
        self._pending: Dict[Tuple[RegClass, int], Tuple[int, int]] = {}
        # Outstanding claims: ptag -> (slot, def_pc, redef_pc).
        self._claims: Dict[Tuple[RegClass, int],
                           Tuple[int, Optional[int], int]] = {}

    @property
    def ok(self) -> bool:
        return not self.violations

    # -- event handlers ----------------------------------------------------
    def on_allocate(self, entry, cycle: int) -> None:
        self._pending = {}
        pc = entry.dyn.pc
        for record in entry.dests:
            new_key = (record.file, record.new_ptag)
            # A recycled ptag starts a fresh lifetime: any state recorded
            # for a previous owner is stale.
            self._claims.pop(new_key, None)
            self._def_pc[new_key] = pc
            self._pending[(record.file, record.prev_ptag)] = (record.slot, pc)

    def on_claim(self, file_cls, ptag: int, cycle: int) -> None:
        self.claims_seen += 1
        key = (file_cls, ptag)
        pending = self._pending.get(key)
        if pending is None:
            # Cannot happen with the documented rename event order; treat
            # as a violation rather than crashing the run.
            self.violations.append(AtrViolation(
                file_cls, ptag, None, None, None, cycle,
                "claim event outside the allocate/post-rename window"))
            return
        slot, redef_pc = pending
        self._claims[key] = (slot, self._def_pc.get(key), redef_pc)

    def on_early_release(self, file_cls, ptag: int, cycle: int) -> None:
        self.releases_seen += 1
        key = (file_cls, ptag)
        claim = self._claims.pop(key, None)
        if claim is None:
            if self.strict_unclaimed:
                self.violations.append(AtrViolation(
                    file_cls, ptag, None, None, None, cycle,
                    "early release without an outstanding ATR claim"))
            return
        self.atr_releases += 1
        slot, def_pc, redef_pc = claim
        if (file_cls, slot, def_pc, redef_pc) not in self.atomic_keys:
            self.violations.append(AtrViolation(
                file_cls, ptag, slot, def_pc, redef_pc, cycle,
                "window is not a statically-proven atomic region"))

    def summary(self) -> str:
        return (f"{self.releases_seen} early releases "
                f"({self.atr_releases} ATR-claimed, {self.claims_seen} claims), "
                f"{len(self.atomic_keys)} static atomic windows, "
                f"{len(self.violations)} violations")


@dataclass
class OracleReport:
    """Outcome of one differential run."""

    name: str
    scheme: str
    releases_seen: int
    atr_releases: int
    claims_seen: int
    static_atomic: int
    violations: List[AtrViolation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def render(self) -> str:
        status = "OK" if self.ok else f"{len(self.violations)} VIOLATIONS"
        lines = [f"{self.name}/{self.scheme}: {status} — "
                 f"{self.atr_releases}/{self.releases_seen} releases "
                 f"ATR-claimed, {self.static_atomic} static atomic windows"]
        lines.extend(f"  {v}" for v in self.violations)
        return "\n".join(lines)


def check_trace(trace: Trace, scheme: str = "atr", rf_size: int = 48,
                redefine_delay: int = 0, config=None,
                report: Optional[StaticRegionReport] = None) -> OracleReport:
    """Run *trace* through the pipeline with the oracle probe attached."""
    if scheme not in ATR_SCHEMES:
        raise ValueError(f"scheme {scheme!r} performs no ATR claims; "
                         f"expected one of {ATR_SCHEMES}")
    if config is None:
        config = fast_test_config(rf_size=rf_size, scheme=scheme,
                                  redefine_delay=redefine_delay)
    core = Core(config, trace)
    probe = AtrSoundnessProbe(trace.program, report=report,
                              strict_unclaimed=(scheme == "atr"))
    core.add_probe(probe)
    core.run()
    return OracleReport(
        name=trace.name,
        scheme=scheme,
        releases_seen=probe.releases_seen,
        atr_releases=probe.atr_releases,
        claims_seen=probe.claims_seen,
        static_atomic=len(probe.atomic_keys),
        violations=list(probe.violations),
    )


def check_benchmark(name: str, instructions: int = 1500,
                    schemes: Tuple[str, ...] = ATR_SCHEMES,
                    rf_size: int = 48,
                    redefine_delay: int = 0) -> List[OracleReport]:
    """Oracle-check one workload kernel under each ATR scheme."""
    from ..workloads import build_trace
    trace = build_trace(name, instructions)
    report = analyze_regions(trace.program)
    return [check_trace(trace, scheme=scheme, rf_size=rf_size,
                        redefine_delay=redefine_delay, report=report)
            for scheme in schemes]


def compare_branch_free(program: Program,
                        max_instructions: int = 200_000) -> Dict[str, Dict]:
    """Static-vs-dynamic window comparison on a branch-free program.

    Requires a program with no region-breaking control flow and no pc
    executed twice (so each static def site maps to one dynamic chain);
    raises ``ValueError`` otherwise.  Returns the two window sets keyed
    by ``(file, slot, def_pc, redef_pc)`` with value
    ``(consumers, non_branch, non_except)`` — equal iff the static pass
    is exact, which :func:`branch_free_counts_match` asserts.
    """
    from ..analysis.regions import classify_regions

    for pc, instr in enumerate(program.instructions):
        if instr.breaks_region_control:
            raise ValueError(
                f"program has region-breaking control at pc {pc}: {instr}")
    trace = run_program(program, max_instructions=max_instructions)
    if not trace.entries or not trace.entries[-1].instr.is_halt:
        raise ValueError("program did not halt within the instruction limit")
    executed = [entry.pc for entry in trace.entries]
    if len(executed) != len(set(executed)):
        raise ValueError("program executes a pc more than once "
                         "(revisits make static windows ambiguous)")

    pc_of_seq = executed
    dynamic: Dict[Tuple, Tuple] = {}
    for chain in classify_regions(trace).chains:
        if chain.redefine_seq is None:
            continue
        key = (chain.file, chain.slot,
               pc_of_seq[chain.alloc_seq], pc_of_seq[chain.redefine_seq])
        dynamic[key] = (chain.consumers, chain.non_branch, chain.non_except)

    static: Dict[Tuple, Tuple] = {}
    for window in analyze_regions(program).closed_windows():
        if window.def_pc is None:
            continue  # virtual entry windows have no dynamic chain
        static[window.key] = (window.consumers, window.non_branch,
                              window.non_except)
    # Static windows whose def never executed (dead code past HALT) have
    # no dynamic counterpart.
    static = {key: value for key, value in static.items()
              if key[2] in set(executed)}
    return {"static": static, "dynamic": dynamic}


def branch_free_counts_match(program: Program,
                             max_instructions: int = 200_000) -> bool:
    """True iff static and dynamic windows agree exactly (see above)."""
    sides = compare_branch_free(program, max_instructions=max_instructions)
    return sides["static"] == sides["dynamic"]
