"""Experiment harness smoke tests: every figure runs end to end on a
small scale and produces a coherent, renderable result."""

import pytest

from repro.experiments import (
    expectations,
    fig01,
    fig04,
    fig06,
    fig10,
    fig11,
    fig12,
    fig13,
    fig14,
    fig15,
    geomean,
    mean,
    run_cell,
    sec44,
    speedup,
)
from repro.experiments.report import compare_line, format_table, pct, shorten

SMALL = dict(instructions=1200)
INT2 = ["505.mcf_r", "531.deepsjeng_r"]
FP2 = ["503.bwaves_r", "508.namd_r"]


class TestRunner:
    def test_run_cell_caches(self):
        a = run_cell("mcf", 64, "baseline", 1200)
        b = run_cell("mcf", 64, "baseline", 1200)
        assert a is b

    def test_speedup_and_means(self):
        assert speedup(1.1, 1.0) == pytest.approx(0.1)
        assert mean([1, 2, 3]) == 2
        assert geomean([1, 4]) == 2
        with pytest.raises(ValueError):
            geomean([0.0])

    def test_cell_carries_scheme_stats(self):
        cell = run_cell("deepsjeng", 64, "atr", 1200)
        assert cell.scheme_stats.atr_claims > 0


class TestFigures:
    def test_fig01_normalized_monotone_at_average(self):
        result = fig01.run(benchmarks=INT2, sizes=(64, 128, 280), **SMALL)
        assert result.average[64] <= result.average[280] + 0.02
        assert result.average[280] <= 1.02
        assert "Figure 1" in result.render()

    def test_fig04_shares(self):
        result = fig04.run(int_benchmarks=INT2, fp_benchmarks=FP2, **SMALL)
        total = (result.int_total.in_use + result.int_total.unused
                 + result.int_total.verified_unused)
        assert total == pytest.approx(1.0)
        assert "verified-unused" in result.render()

    def test_fig06_ratios_bounded(self):
        result = fig06.run(int_benchmarks=INT2, fp_benchmarks=FP2, **SMALL)
        for ratios in result.ratios.values():
            for value in ratios.values():
                assert 0 <= value <= 1
        assert 0 < result.average("int") < 1

    def test_fig10_contains_all_schemes(self):
        result = fig10.run(int_benchmarks=INT2, fp_benchmarks=FP2,
                           sizes=(64,), **SMALL)
        assert ("505.mcf_r", 64, "atr") in result.speedups
        text = result.render()
        assert "nonspec_er" in text and "combined" in text

    def test_fig11_rows_per_size(self):
        result = fig11.run(int_benchmarks=INT2, fp_benchmarks=[],
                           sizes=(64, 128), **SMALL)
        assert len(result.speedups) == 4
        assert "Figure 11" in result.render()

    def test_fig12_histograms(self):
        result = fig12.run(benchmarks=INT2 + ["508.namd_r"], **SMALL)
        assert "namd" in result.render()
        for histogram in result.histograms.values():
            assert all(k >= 0 for k in histogram)

    def test_fig13_delays(self):
        result = fig13.run(benchmarks=["531.deepsjeng_r"], rf_size=64, **SMALL)
        assert set(d for _b, d in result.speedups) == {0, 1, 2}
        assert result.max_degradation() < 0.2

    def test_fig14_ordering(self):
        result = fig14.run(benchmarks=INT2, **SMALL)
        for timing in result.timings.values():
            if timing.chains:
                assert timing.rename_to_redefine <= timing.rename_to_commit + 1e-9

    def test_fig15_reductions(self):
        result = fig15.run(benchmarks=["531.deepsjeng_r"], reference_rf=128,
                           step=16, **SMALL)
        for scheme in ("baseline", "atr", "nonspec_er", "combined"):
            assert result.required[scheme] <= 128
        # early-release schemes never need MORE registers than baseline
        assert result.required["combined"] <= result.required["baseline"]
        assert "Figure 15" in result.render()

    def test_sec44_report(self):
        result = sec44.run()
        assert result.counter_overhead_int == pytest.approx(3 / 64)
        assert "gates" in result.render()


class TestReportHelpers:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], ["xyz", 3]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_pct(self):
        assert pct(0.0513) == "+5.13%"
        assert pct(-0.003) == "-0.30%"

    def test_shorten(self):
        assert shorten("520.omnetpp_r") == "omnetpp"
        assert shorten("plain") == "plain"

    def test_compare_line_contains_both(self):
        line = compare_line("x", 0.05, 0.06)
        assert "+5.00%" in line and "+6.00%" in line


def test_expectations_paper_numbers_present():
    assert expectations.HEADLINE_SPEEDUP_64 == pytest.approx(0.0513)
    assert expectations.FIG15_REGISTERS["atr"] == 204
    assert expectations.SEC44_GATES == 2960
