"""Durable sweep-job queue: on-disk, lease-based, deduplicating.

A *job* is one submission — an ordered list of specs plus a priority
and a label.  A *cell* is one unit of executable work, keyed by its
:func:`~repro.harness.spec.spec_digest`.  The queue stores cells once:
if two jobs (or the same client twice) submit an identical spec, both
jobs reference the **same** cell record and the cell executes exactly
once — that is the coalescing contract the dedup tests prove through
the store's ``puts`` counter.

Layout under one queue root (default ``<cache_root>/service``, or
``$REPRO_SERVICE_DIR``)::

    lock                 flock guard: every mutation runs under it
    index.json           scheduler state: pending list, leases, states
    jobs/<job-id>.json   job records (digests, priority, label, times)
    cells/<digest>.json  cell records (spec, attempts, error, times)
    hosts/<host>.json    worker-host heartbeats

Every file is written atomically (tmp + ``os.replace``) and every
read-modify-write runs under an exclusive ``fcntl`` lock on ``lock``,
so any number of server threads and worker processes on one host (or
on a shared filesystem) see a consistent queue.

Lease protocol: ``claim`` hands a cell to an owner with a deadline
(``now + lease``).  ``complete``/``fail`` are only honoured from the
owner currently holding the lease.  If an owner dies, its lease
expires and the next ``claim`` (or a server reaper tick) moves the
cell back to pending — crash-safe requeue.  A cell that fails
``max_attempts`` times is marked dead and its jobs report failure.

Corrupt-state recovery: a torn or garbled ``index.json`` (a crashed
writer, a bad disk) is rebuilt from the cell records — done/dead cells
keep their verdicts, everything else requeues (in-flight leases cannot
be reconstructed; their late settlements are rejected or accepted
idempotently).  An unreadable *cell* record fails loudly (dead with
cause) instead of silently vanishing, and is repaired wholesale when
its worker settles with the spec it still holds, or resurrected by a
resubmission.  ``complete_with`` publishes the result and settles the
lease in one critical section keyed on (digest, owner), so a duplicate
or stale ``complete`` — a client retry after a dropped reply, a worker
whose lease expired mid-run — can never double-publish: the store's
put counter equals distinct executed cells, always.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
import uuid
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional

from ..harness.spec import Spec, spec_digest, spec_from_dict, spec_to_dict
from ..harness.store import cache_root

SERVICE_DIR_ENV = "REPRO_SERVICE_DIR"

#: Seconds a claimed cell may run before its lease expires and the cell
#: is eligible for requeue.  Must exceed the slowest expected cell.
DEFAULT_LEASE = 600.0
#: Executions per cell before it is declared dead (first run + retries).
DEFAULT_MAX_ATTEMPTS = 3

CELL_PENDING = "pending"
CELL_LEASED = "leased"
CELL_DONE = "done"
CELL_DEAD = "dead"

JOB_PENDING = "pending"
JOB_RUNNING = "running"
JOB_DONE = "done"
JOB_FAILED = "failed"
JOB_CANCELLED = "cancelled"

#: A heartbeat older than this many seconds marks the host as gone.
HOST_TTL = 30.0


def queue_root() -> Path:
    """The default queue directory (sibling of the result store)."""
    override = os.environ.get(SERVICE_DIR_ENV)
    if override:
        return Path(override).expanduser()
    return cache_root() / "service"


def _write_json(path: Path, payload: Dict) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(payload, handle)
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)


def _read_json(path: Path) -> Optional[Dict]:
    try:
        return json.loads(path.read_text())
    except (OSError, ValueError):
        return None


@dataclass
class Lease:
    """One claimed cell: what to run and under which identity."""

    digest: str
    spec: Spec
    attempt: int
    expires: float

    def to_dict(self) -> Dict:
        return {
            "digest": self.digest,
            "spec": spec_to_dict(self.spec),
            "attempt": self.attempt,
            "expires": self.expires,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "Lease":
        return cls(
            digest=data["digest"],
            spec=spec_from_dict(data["spec"]),
            attempt=data["attempt"],
            expires=data["expires"],
        )


@dataclass
class SubmitReceipt:
    """What a submission bought: one job, and how its cells landed."""

    job_id: str
    total: int  #: unique cells in the job
    new: int  #: cells this submission introduced to the queue
    coalesced: int  #: cells already queued/running for another job
    warm: int  #: cells satisfied instantly from the result store
    duplicates: int = 0  #: repeated specs within this submission

    def to_dict(self) -> Dict:
        return {
            "job": self.job_id, "total": self.total, "new": self.new,
            "coalesced": self.coalesced, "warm": self.warm,
            "duplicates": self.duplicates,
        }


class JobQueue:
    """The durable queue.  All public methods are multi-process safe."""

    def __init__(self, root: Optional[Path] = None,
                 lease: float = DEFAULT_LEASE,
                 max_attempts: int = DEFAULT_MAX_ATTEMPTS,
                 clock: Callable[[], float] = time.time,
                 faults=None):
        self.root = Path(root) if root is not None else queue_root()
        self.lease = lease
        self.max_attempts = max_attempts
        self.clock = clock
        #: Optional :class:`~repro.service.faults.FaultInjector`; every
        #: seam below is a ``None`` check when faults are off (default).
        self.faults = faults
        self.root.mkdir(parents=True, exist_ok=True)

    # -- paths & locking ---------------------------------------------------------
    @property
    def _index_path(self) -> Path:
        return self.root / "index.json"

    def _job_path(self, job_id: str) -> Path:
        return self.root / "jobs" / f"{job_id}.json"

    def _cell_path(self, digest: str) -> Path:
        return self.root / "cells" / f"{digest}.json"

    def _host_path(self, host: str) -> Path:
        return self.root / "hosts" / f"{host}.json"

    @contextmanager
    def _locked(self):
        if self.faults is not None:
            self.faults.lock_stall()  # injected flock contention
        lock_path = self.root / "lock"
        handle = open(lock_path, "a+")
        try:
            try:
                import fcntl
            except ImportError:  # pragma: no cover - non-POSIX fallback
                yield
            else:
                fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
                try:
                    yield
                finally:
                    fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
        finally:
            handle.close()

    def _load_index(self) -> Dict:
        index = _read_json(self._index_path)
        if index is None and self._has_state_on_disk():
            # The index exists but is unreadable (torn write, bad disk),
            # or vanished while cell records survive: rebuild it.  The
            # rebuilt view is returned in-memory; the next locked
            # mutation persists it via _save_index.
            index = self._rebuild_index()
        if not index:
            index = {}
        index.setdefault("seq", 0)
        index.setdefault("pending", [])  # [[priority, seq, digest], ...]
        index.setdefault("leases", {})  # digest -> {owner, expires, attempt}
        index.setdefault("states", {})  # digest -> cell state
        index.setdefault("counters", {})
        return index

    def _has_state_on_disk(self) -> bool:
        """Whether a missing/unreadable index actually lost anything."""
        if self._index_path.exists():
            return True  # file present but unparseable: corrupt
        cells_dir = self.root / "cells"
        return cells_dir.is_dir() and any(cells_dir.glob("*.json"))

    def _rebuild_index(self) -> Dict:
        """Reconstruct scheduler state from the cell records.

        Done/dead cells keep their verdicts; everything else (including
        cells that were leased when the index died — leases cannot be
        reconstructed) goes back to pending.  An unreadable cell record
        is marked dead with cause, never silently dropped; a later
        resubmission of its spec resurrects it.  Counters restart from
        zero, with ``index_rebuilds`` recording that history was lost.
        """
        index: Dict = {"seq": 0, "pending": [], "leases": {}, "states": {},
                       "counters": {"index_rebuilds": 1}}
        cells_dir = self.root / "cells"
        if not cells_dir.is_dir():
            return index
        records = []
        for path in sorted(cells_dir.glob("*.json")):
            digest = path.stem
            cell = _read_json(path)
            if cell is None:
                index["states"][digest] = CELL_DEAD
                self._count(index, "corrupt_cells")
                continue
            if not cell.get("jobs") and not cell.get("finished"):
                continue  # cancelled-and-dropped: no live job wants it
            records.append((cell.get("created") or 0, digest, cell))
        for _created, digest, cell in sorted(records,
                                             key=lambda r: (r[0], r[1])):
            if cell.get("finished") is not None:
                index["states"][digest] = (
                    CELL_DONE if cell.get("error") is None else CELL_DEAD)
                continue
            index["seq"] += 1
            index["pending"].append(
                [cell.get("priority", 0), index["seq"], digest])
            index["states"][digest] = CELL_PENDING
        return index

    def _save_index(self, index: Dict) -> None:
        _write_json(self._index_path, index)
        if self.faults is not None:
            self.faults.after_index_write(self._index_path)

    def _write_cell(self, digest: str, cell: Dict) -> None:
        path = self._cell_path(digest)
        _write_json(path, cell)
        if self.faults is not None:
            self.faults.after_cell_write(path)

    @staticmethod
    def _count(index: Dict, key: str, delta: int = 1) -> None:
        index["counters"][key] = index["counters"].get(key, 0) + delta

    # -- submission --------------------------------------------------------------
    def submit(self, specs: Iterable[Spec], priority: int = 0,
               label: str = "",
               is_warm: Optional[Callable[[Spec], bool]] = None) -> SubmitReceipt:
        """Enqueue one job; identical cells coalesce with existing work.

        *is_warm* (typically ``store.contains``) short-circuits cells
        whose result already exists: they are recorded as done without
        ever entering the pending list — the warm-resubmission path.
        """
        specs = list(specs)
        job_id = f"j-{uuid.uuid4().hex[:10]}"
        now = self.clock()
        digests: List[str] = []
        new = coalesced = warm = duplicates = 0
        with self._locked():
            index = self._load_index()
            seen_here = set()
            for spec in specs:
                digest = spec_digest(spec)
                if digest in seen_here:
                    duplicates += 1
                    continue
                seen_here.add(digest)
                digests.append(digest)
                state = index["states"].get(digest)
                cell = _read_json(self._cell_path(digest)) if state else None
                if (cell is not None and state == CELL_DONE
                        and is_warm is not None and not is_warm(spec)):
                    # Stale done-ness: the queue finished this cell once,
                    # but the store no longer holds its result (evicted
                    # by `cache gc`, or the code fingerprint moved on).
                    # Treat it as never-run so the job gets real data.
                    state = cell = None
                if cell is not None and state not in (None, CELL_DEAD):
                    # Coalesce: reference the live cell from this job too.
                    if job_id not in cell["jobs"]:
                        cell["jobs"].append(job_id)
                    cell["priority"] = max(cell["priority"], priority)
                    self._write_cell(digest, cell)
                    if state == CELL_DONE:
                        warm += 1
                    else:
                        coalesced += 1
                        self._count(index, "coalesced")
                        # A higher-priority submission promotes the cell.
                        for entry in index["pending"]:
                            if entry[2] == digest:
                                entry[0] = max(entry[0], priority)
                    continue
                # New cell (or resurrect a dead one for a fresh try).
                record = {
                    "digest": digest,
                    "spec": spec_to_dict(spec),
                    "priority": priority,
                    "jobs": [job_id],
                    "attempts": 0,
                    "error": None,
                    "created": now,
                    "finished": None,
                    "elapsed": None,
                }
                if is_warm is not None and is_warm(spec):
                    record["finished"] = now
                    index["states"][digest] = CELL_DONE
                    warm += 1
                    self._count(index, "warm_hits")
                else:
                    # Drop any stale pending entry for this digest (a
                    # resurrection over a corrupt record must not queue
                    # the cell twice).
                    index["pending"] = [entry for entry in index["pending"]
                                        if entry[2] != digest]
                    index["seq"] += 1
                    index["pending"].append([priority, index["seq"], digest])
                    index["states"][digest] = CELL_PENDING
                    new += 1
                self._write_cell(digest, record)
            _write_json(self._job_path(job_id), {
                "id": job_id,
                "label": label,
                "priority": priority,
                "digests": digests,
                "created": now,
                "cancelled": False,
            })
            self._count(index, "submitted_jobs")
            self._save_index(index)
        return SubmitReceipt(job_id, len(digests), new, coalesced, warm,
                             duplicates)

    # -- claiming ----------------------------------------------------------------
    def claim(self, owner: str, max_cells: int = 1) -> List[Lease]:
        """Lease up to *max_cells* pending cells to *owner*.

        Expired leases are requeued first, so a dead worker's cells are
        reclaimed by the next live claimer without a dedicated reaper.
        Highest priority wins; FIFO within a priority.
        """
        now = self.clock()
        leases: List[Lease] = []
        with self._locked():
            index = self._load_index()
            self._reap_locked(index, now)
            index["pending"].sort(key=lambda entry: (-entry[0], entry[1]))
            while index["pending"] and len(leases) < max_cells:
                _priority, _seq, digest = index["pending"].pop(0)
                cell = _read_json(self._cell_path(digest))
                if cell is None:
                    if self._cell_path(digest).exists():
                        # Unreadable cell record (torn write): fail the
                        # cell loudly — dead with cause — rather than
                        # silently losing it.  A resubmission of the
                        # spec resurrects it with a fresh record.
                        self._quarantine_locked(index, digest, now)
                    else:  # orphaned index entry
                        index["states"].pop(digest, None)
                    continue
                cell["attempts"] += 1
                self._write_cell(digest, cell)
                expires = now + self.lease
                index["leases"][digest] = {
                    "owner": owner, "expires": expires,
                    "attempt": cell["attempts"],
                }
                index["states"][digest] = CELL_LEASED
                leases.append(Lease(digest, spec_from_dict(cell["spec"]),
                                    cell["attempts"], expires))
            if leases:
                self._count(index, "claims", len(leases))
            self._save_index(index)
        return leases

    def _reap_locked(self, index: Dict, now: float) -> int:
        """Requeue expired leases (caller holds the lock)."""
        requeued = 0
        for digest, lease in list(index["leases"].items()):
            if lease["expires"] > now:
                continue
            del index["leases"][digest]
            cell = _read_json(self._cell_path(digest))
            if cell is None:
                if self._cell_path(digest).exists():
                    self._quarantine_locked(index, digest, now)
                else:
                    index["states"].pop(digest, None)
                continue
            if cell["attempts"] >= self.max_attempts:
                cell["error"] = (f"lease expired after attempt "
                                 f"{cell['attempts']}/{self.max_attempts}")
                cell["finished"] = now
                self._write_cell(digest, cell)
                index["states"][digest] = CELL_DEAD
                self._count(index, "dead")
            else:
                index["seq"] += 1
                index["pending"].append([cell["priority"], index["seq"], digest])
                index["states"][digest] = CELL_PENDING
                self._count(index, "requeued")
                requeued += 1
        return requeued

    def reap(self) -> int:
        """Requeue every expired lease; returns how many moved."""
        with self._locked():
            index = self._load_index()
            requeued = self._reap_locked(index, self.clock())
            self._save_index(index)
        return requeued

    def _quarantine_locked(self, index: Dict, digest: str,
                           now: float) -> None:
        """An unreadable cell record fails loudly: dead with cause.

        The replacement record preserves the cause for ``job()`` detail;
        a later resubmission of the spec resurrects the cell (dead cells
        always get a fresh record and a fresh attempt budget).
        """
        index["leases"].pop(digest, None)
        index["pending"] = [entry for entry in index["pending"]
                            if entry[2] != digest]
        index["states"][digest] = CELL_DEAD
        self._count(index, "corrupt_cells")
        self._write_cell(digest, {
            "digest": digest, "spec": None, "priority": 0, "jobs": [],
            "attempts": 0,
            "error": "unreadable cell record (torn write?); "
                     "resubmit the spec to retry",
            "created": now, "finished": now, "elapsed": None,
        })

    # -- settlement --------------------------------------------------------------
    #: EWMA smoothing factor for per-job cell-time estimates.
    ETA_ALPHA = 0.3

    def complete_with(self, digest: str, owner: str,
                      publish: Optional[Callable[[Spec], None]] = None,
                      elapsed: Optional[float] = None,
                      spec_fallback: Optional[Dict] = None) -> str:
        """Publish a result and settle its lease in one critical section.

        Returns one of:

        * ``"accepted"`` — *owner* held the lease; *publish* ran (the
          store write-through) and the cell is done;
        * ``"duplicate"`` — the cell was already done: a retried
          ``complete`` whose first reply was lost, or a worker whose
          expired-lease cell was re-run by someone else.  *publish* is
          **not** re-run, keeping the store's put counter exactly-once;
        * ``"stale"`` — *owner* lost the lease and the cell moved on
          (requeued or quarantined); nothing is published.

        Running *publish* under the queue lock makes publish+settle
        atomic against the reaper and other settlers: a lease cannot
        expire between the store write and the state flip, so no
        interleaving yields two publishes of one cell.  *spec_fallback*
        (the spec dict the worker's lease carried) repairs an
        unreadable cell record at settlement time.
        """
        now = self.clock()
        with self._locked():
            index = self._load_index()
            lease = index["leases"].get(digest)
            if lease is None or lease["owner"] != owner:
                if index["states"].get(digest) == CELL_DONE:
                    self._count(index, "duplicate_settlements")
                    self._save_index(index)
                    return "duplicate"
                # Stale worker: its lease expired and the cell moved on.
                self._count(index, "stale_settlements")
                self._save_index(index)
                return "stale"
            cell = _read_json(self._cell_path(digest))
            if cell is None:
                if spec_fallback is None:
                    # Unreadable record and nothing to repair it with.
                    self._quarantine_locked(index, digest, now)
                    self._save_index(index)
                    return "stale"
                cell = {
                    "digest": digest, "spec": spec_fallback,
                    "priority": 0, "jobs": [],
                    "attempts": lease.get("attempt", 1),
                    "error": None, "created": now,
                    "finished": None, "elapsed": None,
                }
                self._count(index, "repaired_cells")
            del index["leases"][digest]
            if publish is not None:
                publish(spec_from_dict(cell["spec"]))
            cell["error"] = None
            cell["finished"] = now
            cell["elapsed"] = elapsed
            index["states"][digest] = CELL_DONE
            self._count(index, "executed")
            self._write_cell(digest, cell)
            if elapsed is not None:
                self._note_cell_time_locked(cell, elapsed)
            self._save_index(index)
        return "accepted"

    def _note_cell_time_locked(self, cell: Dict, elapsed: float) -> None:
        """Fold a completed cell's wall time into each referencing
        job's EWMA — the timing history behind :meth:`job`'s ``eta``."""
        for job_id in cell.get("jobs") or ():
            record = _read_json(self._job_path(job_id))
            if record is None:
                continue
            timing = record.get("timing") or {"ewma": None, "count": 0}
            if timing.get("ewma") is None:
                timing["ewma"] = elapsed
            else:
                timing["ewma"] = (self.ETA_ALPHA * elapsed
                                  + (1 - self.ETA_ALPHA) * timing["ewma"])
            timing["count"] = timing.get("count", 0) + 1
            record["timing"] = timing
            _write_json(self._job_path(job_id), record)

    def complete(self, digest: str, owner: str,
                 elapsed: Optional[float] = None) -> bool:
        """Mark a leased cell done.  False if *owner* lost the lease
        and the cell is not already done."""
        return self.complete_with(digest, owner, elapsed=elapsed) in (
            "accepted", "duplicate")

    def fail(self, digest: str, owner: str, error: str) -> bool:
        """Report a cell failure; requeues until ``max_attempts``."""
        now = self.clock()
        with self._locked():
            index = self._load_index()
            lease = index["leases"].get(digest)
            if lease is None or lease["owner"] != owner:
                # Stale worker: its lease expired and the cell moved on.
                self._count(index, "stale_settlements")
                self._save_index(index)
                return False
            del index["leases"][digest]
            cell = _read_json(self._cell_path(digest))
            if cell is None:
                self._quarantine_locked(index, digest, now)
                self._save_index(index)
                return False
            if cell["attempts"] >= self.max_attempts:
                cell["error"] = error
                cell["finished"] = now
                index["states"][digest] = CELL_DEAD
                self._count(index, "dead")
            else:
                cell["error"] = error
                index["seq"] += 1
                index["pending"].append(
                    [cell["priority"], index["seq"], digest])
                index["states"][digest] = CELL_PENDING
                self._count(index, "requeued")
            self._write_cell(digest, cell)
            self._save_index(index)
        return True

    # -- jobs --------------------------------------------------------------------
    def job(self, job_id: str) -> Optional[Dict]:
        """Status of one job: per-state cell counts + failed-cell detail."""
        record = _read_json(self._job_path(job_id))
        if record is None:
            return None
        index = self._load_index()
        counts = {CELL_PENDING: 0, CELL_LEASED: 0, CELL_DONE: 0, CELL_DEAD: 0}
        failed: List[Dict] = []
        for digest in record["digests"]:
            state = index["states"].get(digest, CELL_PENDING)
            counts[state] = counts.get(state, 0) + 1
            if state == CELL_DEAD:
                cell = _read_json(self._cell_path(digest))
                if cell is None:
                    cell = {"error": "unreadable cell record (torn write?)"}
                failed.append({"digest": digest,
                               "spec": cell.get("spec"),
                               "error": cell.get("error")})
        total = len(record["digests"])
        if record.get("cancelled"):
            state = JOB_CANCELLED
        elif counts[CELL_DEAD]:
            state = (JOB_FAILED
                     if counts[CELL_DONE] + counts[CELL_DEAD] == total
                     else JOB_RUNNING)
        elif counts[CELL_DONE] == total:
            state = JOB_DONE
        elif counts[CELL_LEASED] or counts[CELL_DONE]:
            state = JOB_RUNNING
        else:
            state = JOB_PENDING
        # Progress ETA: EWMA of completed-cell wall times, scaled by the
        # work left and divided across the cells currently in flight.
        ewma = (record.get("timing") or {}).get("ewma")
        remaining = counts[CELL_PENDING] + counts[CELL_LEASED]
        eta = None
        if ewma is not None and remaining:
            eta = ewma * remaining / max(1, counts[CELL_LEASED])
        return {
            "id": job_id,
            "label": record.get("label", ""),
            "priority": record.get("priority", 0),
            "created": record.get("created"),
            "state": state,
            "total": total,
            "done": counts[CELL_DONE],
            "pending": counts[CELL_PENDING],
            "leased": counts[CELL_LEASED],
            "dead": counts[CELL_DEAD],
            "failed_cells": failed,
            "cell_ewma": ewma,
            "eta": eta,
        }

    def jobs(self) -> List[Dict]:
        """Every known job, newest first."""
        out = []
        jobs_dir = self.root / "jobs"
        if jobs_dir.is_dir():
            for path in jobs_dir.glob("j-*.json"):
                status = self.job(path.stem)
                if status is not None:
                    out.append(status)
        out.sort(key=lambda j: j.get("created") or 0, reverse=True)
        return out

    def cancel(self, job_id: str) -> bool:
        """Cancel a job; cells no other live job wants are dropped."""
        with self._locked():
            record = _read_json(self._job_path(job_id))
            if record is None or record.get("cancelled"):
                return False
            record["cancelled"] = True
            _write_json(self._job_path(job_id), record)
            index = self._load_index()
            for digest in record["digests"]:
                cell = _read_json(self._cell_path(digest))
                if cell is None:
                    continue
                if job_id in cell["jobs"]:
                    cell["jobs"].remove(job_id)
                self._write_cell(digest, cell)
                # Drop pending cells that no remaining job references.
                # (Leased cells run to completion: their result is
                # cached and harmless; done/dead cells keep their state.)
                if not cell["jobs"] and \
                        index["states"].get(digest) == CELL_PENDING:
                    index["pending"] = [entry for entry in index["pending"]
                                        if entry[2] != digest]
                    index["states"].pop(digest, None)
                    self._count(index, "dropped")
            self._count(index, "cancelled_jobs")
            self._save_index(index)
        return True

    # -- hosts -------------------------------------------------------------------
    def heartbeat(self, host: str, workers: Optional[int] = None,
                  meta: Optional[Dict] = None) -> None:
        """Record that *host* is alive with *workers* worker processes.

        ``workers=None`` is a pure liveness refresh (e.g. from a claim):
        the last explicitly reported worker count is preserved.
        """
        if workers is None:
            previous = _read_json(self._host_path(host))
            workers = int((previous or {}).get("workers", 1))
        payload = {"host": host, "workers": workers,
                   "seen": self.clock()}
        if meta:
            payload["meta"] = meta
        _write_json(self._host_path(host), payload)

    def hosts(self, ttl: float = HOST_TTL) -> List[Dict]:
        """Registered hosts; ``alive`` is heartbeat recency vs. *ttl*."""
        now = self.clock()
        out = []
        hosts_dir = self.root / "hosts"
        if hosts_dir.is_dir():
            for path in sorted(hosts_dir.glob("*.json")):
                record = _read_json(path)
                if record is None:
                    continue
                record["alive"] = (now - record.get("seen", 0)) < ttl
                out.append(record)
        return out

    # -- stats -------------------------------------------------------------------
    def stats(self) -> Dict:
        index = self._load_index()
        states = index["states"].values()
        by_state = {state: 0 for state in
                    (CELL_PENDING, CELL_LEASED, CELL_DONE, CELL_DEAD)}
        for state in states:
            by_state[state] = by_state.get(state, 0) + 1
        hosts = self.hosts()
        return {
            "root": str(self.root),
            "cells": by_state,
            "pending_queue": len(index["pending"]),
            "active_leases": len(index["leases"]),
            "counters": dict(index["counters"]),
            "hosts": hosts,
            "alive_hosts": sum(1 for h in hosts if h["alive"]),
        }
