"""JobQueue: leases, requeue, dedup/coalescing, priorities, durability."""

import pytest

from repro.harness import CellSpec, ResultStore, spec_digest
from repro.service import DEFAULT_MAX_ATTEMPTS, JobQueue
from repro.service.queue import (
    CELL_DEAD,
    CELL_DONE,
    CELL_LEASED,
    CELL_PENDING,
    JOB_CANCELLED,
    JOB_DONE,
    JOB_FAILED,
    JOB_PENDING,
    JOB_RUNNING,
)


def spec(scheme="atr", rf=64, n=500):
    return CellSpec("505.mcf_r", rf, scheme, n)


class FakeClock:
    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def queue(tmp_path, clock):
    return JobQueue(root=tmp_path / "q", lease=60.0, clock=clock)


def test_submit_claim_complete_done(queue):
    receipt = queue.submit([spec("atr"), spec("baseline")], label="t")
    assert (receipt.total, receipt.new) == (2, 2)
    assert queue.job(receipt.job_id)["state"] == JOB_PENDING

    leases = queue.claim("w1", max_cells=10)
    assert len(leases) == 2
    assert {lease.spec.scheme for lease in leases} == {"atr", "baseline"}
    assert queue.job(receipt.job_id)["state"] == JOB_RUNNING

    for lease in leases:
        assert queue.complete(lease.digest, "w1", elapsed=0.5)
    status = queue.job(receipt.job_id)
    assert status["state"] == JOB_DONE
    assert status["done"] == 2


def test_duplicate_specs_within_one_submission_collapse(queue):
    receipt = queue.submit([spec(), spec(), spec()])
    assert receipt.total == 1
    assert receipt.duplicates == 2
    assert len(queue.claim("w", max_cells=10)) == 1


def test_concurrent_jobs_coalesce_one_execution(queue):
    first = queue.submit([spec("atr"), spec("baseline")])
    second = queue.submit([spec("atr"), spec("combined")])
    assert second.coalesced == 1  # the shared atr cell
    assert second.new == 1

    # Three unique cells total — the shared one exists once.
    leases = queue.claim("w", max_cells=10)
    assert len(leases) == 3
    for lease in leases:
        queue.complete(lease.digest, "w")
    assert queue.job(first.job_id)["state"] == JOB_DONE
    assert queue.job(second.job_id)["state"] == JOB_DONE


def test_warm_cells_complete_without_executing(queue):
    warm_digest = spec_digest(spec("atr"))

    receipt = queue.submit(
        [spec("atr"), spec("baseline")],
        is_warm=lambda s: spec_digest(s) == warm_digest)
    assert receipt.warm == 1
    assert receipt.new == 1
    # Only the cold cell is claimable.
    leases = queue.claim("w", max_cells=10)
    assert len(leases) == 1
    assert leases[0].spec.scheme == "baseline"


def test_lease_expiry_requeues_cell(queue, clock):
    receipt = queue.submit([spec()])
    (lease,) = queue.claim("doomed")
    assert queue.claim("other") == []  # leased: nothing to claim

    clock.advance(61.0)  # past the lease deadline
    (release,) = queue.claim("other")
    assert release.digest == lease.digest
    assert release.attempt == 2
    # The dead worker's late completion is rejected...
    assert not queue.complete(lease.digest, "doomed")
    # ...while the live lease settles normally.
    assert queue.complete(release.digest, "other")
    assert queue.job(receipt.job_id)["state"] == JOB_DONE


def test_reap_requeues_without_a_claimer(queue, clock):
    queue.submit([spec()])
    queue.claim("doomed")
    assert queue.reap() == 0  # lease still live
    clock.advance(61.0)
    assert queue.reap() == 1
    assert queue.stats()["cells"][CELL_PENDING] == 1


def test_cell_dies_after_max_attempts(queue, clock):
    receipt = queue.submit([spec()])
    for attempt in range(1, DEFAULT_MAX_ATTEMPTS + 1):
        (lease,) = queue.claim(f"w{attempt}")
        assert lease.attempt == attempt
        clock.advance(61.0)
    assert queue.claim("w-final") == []  # dead, not requeued
    status = queue.job(receipt.job_id)
    assert status["state"] == JOB_FAILED
    assert status["dead"] == 1
    assert "lease expired" in status["failed_cells"][0]["error"]


def test_explicit_failures_requeue_then_kill(queue):
    receipt = queue.submit([spec()])
    for attempt in range(1, DEFAULT_MAX_ATTEMPTS + 1):
        (lease,) = queue.claim("w")
        assert queue.fail(lease.digest, "w", f"boom {attempt}")
    status = queue.job(receipt.job_id)
    assert status["state"] == JOB_FAILED
    assert status["failed_cells"][0]["error"] == "boom 3"


def test_priority_orders_claims(queue):
    queue.submit([spec("baseline")], priority=0)
    queue.submit([spec("atr")], priority=5)
    queue.submit([spec("combined")], priority=1)
    order = [queue.claim("w")[0].spec.scheme for _ in range(3)]
    assert order == ["atr", "combined", "baseline"]


def test_coalescing_promotes_priority(queue):
    queue.submit([spec("baseline")], priority=0)
    queue.submit([spec("atr")], priority=0)
    # A high-priority submission of the baseline cell jumps the queue.
    queue.submit([spec("baseline")], priority=9)
    assert queue.claim("w")[0].spec.scheme == "baseline"


def test_cancel_drops_exclusive_pending_cells(queue):
    shared = queue.submit([spec("atr")])
    doomed = queue.submit([spec("atr"), spec("baseline")])
    assert queue.cancel(doomed.job_id)
    assert queue.job(doomed.job_id)["state"] == JOB_CANCELLED
    assert not queue.cancel(doomed.job_id)  # idempotent-ish: already gone

    # The shared atr cell survives (job 1 still wants it); the baseline
    # cell was exclusively doomed's and is dropped.
    leases = queue.claim("w", max_cells=10)
    assert [lease.spec.scheme for lease in leases] == ["atr"]
    queue.complete(leases[0].digest, "w")
    assert queue.job(shared.job_id)["state"] == JOB_DONE


def test_queue_state_survives_reopen(tmp_path, clock):
    first = JobQueue(root=tmp_path / "q", lease=60.0, clock=clock)
    receipt = first.submit([spec("atr"), spec("baseline")], label="durable")
    first.claim("w1")

    # A brand-new JobQueue over the same directory sees everything.
    second = JobQueue(root=tmp_path / "q", lease=60.0, clock=clock)
    status = second.job(receipt.job_id)
    assert status["label"] == "durable"
    assert status["leased"] == 1
    assert status["pending"] == 1
    stats = second.stats()
    assert stats["cells"][CELL_LEASED] == 1
    assert stats["cells"][CELL_PENDING] == 1


def test_hosts_heartbeat_and_ttl(queue, clock):
    queue.heartbeat("alpha", workers=8)
    queue.heartbeat("beta", workers=2)
    hosts = {h["host"]: h for h in queue.hosts()}
    assert hosts["alpha"]["workers"] == 8
    assert all(h["alive"] for h in hosts.values())

    clock.advance(31.0)
    queue.heartbeat("beta", workers=2)
    hosts = {h["host"]: h for h in queue.hosts()}
    assert not hosts["alpha"]["alive"]
    assert hosts["beta"]["alive"]
    assert queue.stats()["alive_hosts"] == 1


def test_liveness_refresh_preserves_worker_count(queue, clock):
    """A claim-side heartbeat (no explicit count) must not clobber the
    pool size the worker reported."""
    queue.heartbeat("alpha", workers=8)
    clock.advance(1.0)
    queue.heartbeat("alpha")  # liveness-only refresh
    host = {h["host"]: h for h in queue.hosts()}["alpha"]
    assert host["workers"] == 8
    assert host["seen"] == clock.now
    queue.heartbeat("fresh")  # never reported: defaults to 1
    assert {h["host"]: h for h in queue.hosts()}["fresh"]["workers"] == 1


def test_stats_counters_track_lifecycle(queue, clock):
    queue.submit([spec("atr"), spec("baseline")])
    queue.submit([spec("atr")])  # coalesces
    (lease, _other) = queue.claim("w", max_cells=2)
    queue.complete(lease.digest, "w")
    clock.advance(61.0)
    queue.reap()  # the other lease expires

    counters = queue.stats()["counters"]
    assert counters["submitted_jobs"] == 2
    assert counters["coalesced"] == 1
    assert counters["executed"] == 1
    assert counters["requeued"] == 1


def test_done_cells_count_as_warm_for_later_jobs(queue):
    queue.submit([spec()])
    (lease,) = queue.claim("w")
    queue.complete(lease.digest, "w")
    # A later job referencing the done cell is born complete.
    receipt = queue.submit([spec()])
    assert receipt.warm == 1
    assert queue.job(receipt.job_id)["state"] == JOB_DONE
    assert queue.stats()["cells"][CELL_DONE] == 1


def test_store_backed_warm_check(tmp_path, queue):
    """The server wires ``is_warm=store.contains``: anything already in
    the store under the current fingerprint never enters the queue."""
    store = ResultStore(root=tmp_path / "store", fingerprint="d" * 64)
    store.put(spec("atr"), {"cached": True})
    receipt = queue.submit([spec("atr"), spec("baseline")],
                           is_warm=store.contains)
    assert receipt.warm == 1
    assert receipt.new == 1
    assert queue.stats()["cells"][CELL_DONE] == 1


def test_stale_done_cell_reruns_when_store_lost_the_result(tmp_path, queue):
    """Queue done-ness is only trusted while the store still holds the
    result: after `cache gc` (or a code-fingerprint change) a resubmit
    re-executes instead of reporting a warm cell with no data."""
    store = ResultStore(root=tmp_path / "store", fingerprint="d" * 64)
    queue.submit([spec()])
    (lease,) = queue.claim("w")
    store.put(lease.spec, {"real": True})
    queue.complete(lease.digest, "w")
    # While the store holds the result, resubmission is warm.
    assert queue.submit([spec()], is_warm=store.contains).warm == 1

    store.clear()  # cache gc wiped the entry; queue still says done
    receipt = queue.submit([spec()], is_warm=store.contains)
    assert receipt.warm == 0
    assert receipt.new == 1
    assert queue.stats()["cells"][CELL_PENDING] == 1


def test_dead_cell_resubmission_gets_fresh_attempts(queue, clock):
    """A cell that died can be resubmitted by a new job and runs again."""
    queue.submit([spec()])
    for _ in range(DEFAULT_MAX_ATTEMPTS):
        (lease,) = queue.claim("w")
        queue.fail(lease.digest, "w", "boom")
    assert queue.stats()["cells"][CELL_DEAD] == 1

    retry = queue.submit([spec()])
    assert retry.new == 1  # resurrected, not coalesced with the corpse
    (lease,) = queue.claim("w2")
    assert lease.attempt == 1
    queue.complete(lease.digest, "w2")
    assert queue.job(retry.job_id)["state"] == JOB_DONE
