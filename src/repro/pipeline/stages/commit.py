"""Commit stage: in-order retirement, up to retire width.

Stores write the memory image here (address/value were captured at
issue), and the release scheme's commit hook performs conventional
frees.  Per-instruction timeline rows are appended when
``config.record_timeline`` is set.
"""

from __future__ import annotations

from . import Stage


class CommitStage(Stage):
    """Retire completed, precommitted instructions from the ROB head."""

    name = "commit"

    def __init__(self, state):
        super().__init__(state)
        config = self.config
        self.width = config.retire_width
        self.record_timeline = config.record_timeline
        self.rob = state.rob
        self.scheme = state.scheme
        self.checkpoints = state.checkpoints
        self.memory = state.memory
        self.stats = state.stats
        self.stores = state.stores
        self.mem_values = state.mem_values
        self.timeline = state.timeline

    def run(self, state, cycle: int) -> None:
        rob = self.rob
        scheme = self.scheme
        stats = self.stats
        probes = state.probes
        for _ in range(self.width):
            entry = rob.head()
            if entry is None or not entry.completed or not entry.precommitted:
                break
            rob.pop_head()
            entry.committed = True
            entry.cycle_commit = cycle
            instr = entry.instr
            if instr.is_store:
                self._commit_store(state, entry, cycle)
            if instr.is_load:
                state.lq_used -= 1
            scheme.on_commit(entry, cycle)
            if entry.dyn.trace_seq >= 0:
                state.last_committed_trace_seq = entry.dyn.trace_seq
            if probes is not None:
                for fn in probes.commit:
                    fn(entry, cycle)
            if entry.has_checkpoint:
                self.checkpoints.release_older_equal(entry.seq)
            stats.count_commit(instr.op_class.value)
            if self.record_timeline:
                self.timeline.append(
                    (entry.dyn.trace_seq, entry.dyn.pc, entry.cycle_rename,
                     entry.cycle_issue, entry.cycle_complete,
                     entry.cycle_precommit, entry.cycle_commit)
                )

    def _commit_store(self, state, entry, cycle: int) -> None:
        record = self.stores.pop(entry.seq, None)
        if record is not None:
            mem_values = self.mem_values
            for addr, value in record.words:
                mem_values[addr] = value
            try:
                state.store_order.remove(entry.seq)
            except ValueError:
                pass
        state.drop_store_words(entry)
        state.sq_used -= 1
        if entry.dyn.mem_addr is not None:
            self.memory.store(cycle, entry.dyn.mem_addr, pc=entry.dyn.pc)
