"""Figure 11: ATR speedup over baseline vs register file size.

The gains shrink monotonically as registers stop being the bottleneck:
5.70%/4.69% (int/fp) at 64 registers down to 0.93%/0.53% at 280.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from . import expectations
from .report import compare_line, format_table, pct, shorten
from .runner import (
    cell_spec,
    default_fp_suite,
    default_instructions,
    default_int_suite,
    mean,
    prime_cells,
    run_cell,
    speedup,
)

DEFAULT_SIZES: Tuple[int, ...] = (64, 96, 128, 160, 192, 224, 256, 280)


@dataclass
class Fig11Result:
    sizes: Sequence[int]
    int_benchmarks: Sequence[str]
    fp_benchmarks: Sequence[str]
    speedups: Dict[Tuple[str, int], float]  # (benchmark, rf) -> atr speedup

    def average(self, which: str, rf_size: int) -> float:
        suite = self.int_benchmarks if which == "int" else self.fp_benchmarks
        return mean(self.speedups[(b, rf_size)] for b in suite)

    def render(self) -> str:
        headers = ["benchmark"] + [str(s) for s in self.sizes]
        rows = []
        for benchmark in list(self.int_benchmarks) + list(self.fp_benchmarks):
            rows.append([shorten(benchmark)]
                        + [pct(self.speedups[(benchmark, s)]) for s in self.sizes])
        # A suite may be empty (e.g. an int-only sweep); averages over an
        # empty suite are undefined, so skip those rows entirely.
        if self.int_benchmarks:
            rows.append(["INT AVERAGE"]
                        + [pct(self.average("int", s)) for s in self.sizes])
        if self.fp_benchmarks:
            rows.append(["FP AVERAGE"]
                        + [pct(self.average("fp", s)) for s in self.sizes])
        table = format_table(headers, rows,
                             title="Figure 11: ATR speedup over baseline vs RF size")
        lo, hi = min(self.sizes), max(self.sizes)
        lines = [table, ""]
        if self.int_benchmarks:
            lines += [
                compare_line(f"int @{lo}", self.average("int", lo),
                             expectations.FIG11_ATR_AT_64["int"]),
                compare_line(f"int @{hi}", self.average("int", hi),
                             expectations.FIG11_ATR_AT_280["int"]),
            ]
        if self.fp_benchmarks:
            lines += [
                compare_line(f"fp  @{lo}", self.average("fp", lo),
                             expectations.FIG11_ATR_AT_64["fp"]),
                compare_line(f"fp  @{hi}", self.average("fp", hi),
                             expectations.FIG11_ATR_AT_280["fp"]),
            ]
        return "\n".join(lines)


def run(
    int_benchmarks: Optional[Sequence[str]] = None,
    fp_benchmarks: Optional[Sequence[str]] = None,
    sizes: Sequence[int] = DEFAULT_SIZES,
    instructions: Optional[int] = None,
    jobs: Optional[int] = None,
) -> Fig11Result:
    int_benchmarks = list(default_int_suite() if int_benchmarks is None else int_benchmarks)
    fp_benchmarks = list(default_fp_suite() if fp_benchmarks is None else fp_benchmarks)
    instructions = instructions or default_instructions()
    if jobs is not None:
        prime_cells(
            [cell_spec(b, rf_size, scheme, instructions)
             for b in int_benchmarks + fp_benchmarks
             for rf_size in sizes
             for scheme in ("baseline", "atr")],
            jobs=jobs,
        )
    speedups: Dict[Tuple[str, int], float] = {}
    for benchmark in int_benchmarks + fp_benchmarks:
        for rf_size in sizes:
            base = run_cell(benchmark, rf_size, "baseline", instructions)
            atr = run_cell(benchmark, rf_size, "atr", instructions)
            speedups[(benchmark, rf_size)] = speedup(atr.ipc, base.ipc)
    return Fig11Result(
        sizes=sizes,
        int_benchmarks=int_benchmarks,
        fp_benchmarks=fp_benchmarks,
        speedups=speedups,
    )
