"""CLI smoke tests (``python -m repro ...``)."""

import pytest

from repro.cli import build_parser, main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "505.mcf_r" in out and "554.roms_r" in out


def test_disasm(capsys):
    assert main(["disasm", "xz"]) == 0
    out = capsys.readouterr().out
    assert "ld " in out and "bne" in out


def test_run(capsys):
    assert main(["run", "deepsjeng", "-n", "1500", "-r", "64", "-s", "atr"]) == 0
    out = capsys.readouterr().out
    assert "IPC" in out and "releases:" in out


def test_compare(capsys):
    assert main(["compare", "deepsjeng", "-n", "1500", "-r", "64"]) == 0
    out = capsys.readouterr().out
    assert "baseline" in out and "combined" in out


def test_analyze(capsys):
    assert main(["analyze", "omnetpp", "-n", "1500"]) == 0
    out = capsys.readouterr().out
    assert "atomic" in out


def test_figure_quick(capsys):
    assert main(["figure", "fig06", "-n", "1000", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "atomic" in out


def test_figure_sec44(capsys):
    assert main(["figure", "sec44"]) == 0
    assert "gates" in capsys.readouterr().out


def test_figure_unknown(capsys):
    assert main(["figure", "fig99"]) == 2


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])
