"""Branch prediction: TAGE-SC-L-lite, bimodal, gshare, BTB, indirect, RAS."""

from .interface import DirectionPredictor, Prediction, TargetPredictor, saturate
from .simple import AlwaysNotTaken, AlwaysTaken, Bimodal, GShare, Oracle
from .tage import LoopPredictor, Tage
from .targets import BranchTargetBuffer, IndirectTargetPredictor, ReturnAddressStack
from .unit import BranchStats, BranchUnit
from ..registry import Registry

#: Direction-predictor registry: config name -> zero-arg factory.  Single
#: source of truth shared by CoreConfig.validate() (fail-fast on unknown
#: names), the fetch stage's make_predictor(), and ``repro list
#: predictors``; plugin predictors join through the discovery hook
#: (:mod:`repro.registry`).  Mapping-shaped, so dict-era call sites
#: (``name in PREDICTORS``, ``sorted(PREDICTORS)``, ``PREDICTORS[name]``)
#: are unchanged.
PREDICTORS: Registry = Registry(
    "predictor", doc="branch direction predictors")
PREDICTORS.register("tage", Tage)
PREDICTORS.register("gshare", GShare)
PREDICTORS.register("bimodal", Bimodal)
PREDICTORS.register("always_taken", AlwaysTaken)
PREDICTORS.register("always_not_taken", AlwaysNotTaken)

__all__ = [
    "PREDICTORS",
    "DirectionPredictor", "TargetPredictor", "Prediction", "saturate",
    "AlwaysTaken", "AlwaysNotTaken", "Oracle", "Bimodal", "GShare",
    "Tage", "LoopPredictor",
    "BranchTargetBuffer", "IndirectTargetPredictor", "ReturnAddressStack",
    "BranchUnit", "BranchStats",
]
