"""CLI smoke tests (``python -m repro ...``)."""

import pytest

from repro.cli import build_parser, main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "505.mcf_r" in out and "554.roms_r" in out
    # variant refs are addressable and listed alongside their base
    assert "505.mcf_r/ref2" in out


def test_list_categories(capsys):
    assert main(["list", "schemes"]) == 0
    out = capsys.readouterr().out
    assert "atr" in out and "combined" in out

    assert main(["list", "configs"]) == 0
    out = capsys.readouterr().out
    assert "golden_cove" in out and "golden_cove_rf64" in out

    assert main(["list", "predictors"]) == 0
    assert "tage" in capsys.readouterr().out

    assert main(["list", "figures"]) == 0
    assert "fig06" in capsys.readouterr().out


def test_run_variant(capsys):
    assert main(["run", "mcf/ref2", "-n", "1500", "-r", "64", "-s", "atr"]) == 0
    out = capsys.readouterr().out
    assert "505.mcf_r/ref2" in out and "IPC" in out


def test_run_config_preset(capsys):
    assert main(["run", "xz", "-n", "1500", "-c", "golden_cove_rf64"]) == 0
    out = capsys.readouterr().out
    assert "IPC" in out and "@ 64 regs" in out


def test_run_config_preset_composes_with_rf_override(capsys):
    # -c and -r compose: -r overrides the preset's register-file size
    assert main(["run", "xz", "-n", "1500", "-c", "golden_cove", "-r", "72"]) == 0
    assert "@ 72 regs" in capsys.readouterr().out


def test_disasm(capsys):
    assert main(["disasm", "xz"]) == 0
    out = capsys.readouterr().out
    assert "ld " in out and "bne" in out


def test_run(capsys):
    assert main(["run", "deepsjeng", "-n", "1500", "-r", "64", "-s", "atr"]) == 0
    out = capsys.readouterr().out
    assert "IPC" in out and "releases:" in out


def test_compare(capsys):
    assert main(["compare", "deepsjeng", "-n", "1500", "-r", "64"]) == 0
    out = capsys.readouterr().out
    assert "baseline" in out and "combined" in out


def test_analyze(capsys):
    assert main(["analyze", "omnetpp", "-n", "1500"]) == 0
    out = capsys.readouterr().out
    assert "atomic" in out


def test_figure_quick(capsys):
    assert main(["figure", "fig06", "-n", "1000", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "atomic" in out


def test_figure_sec44(capsys):
    assert main(["figure", "sec44"]) == 0
    assert "gates" in capsys.readouterr().out


def test_figure_unknown(capsys):
    assert main(["figure", "fig99"]) == 2


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_cache_info_reports_counters(capsys):
    assert main(["cache", "info"]) == 0
    out = capsys.readouterr().out
    assert "lifetime:" in out and "puts" in out


def test_cache_gc_requires_a_limit(capsys):
    assert main(["cache", "gc"]) == 2
    assert "--max-bytes" in capsys.readouterr().err


def test_cache_gc_max_bytes_zero(capsys, tmp_path, monkeypatch):
    # Isolated root: gc must not wipe the session-shared warm cache.
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    assert main(["cache", "gc", "--max-bytes", "0"]) == 0
    assert "cache gc: removed" in capsys.readouterr().out


def test_service_clients_fail_cleanly_without_server(capsys):
    # Port 1 is never a repro service: every client op must exit 1
    # with a readable error, not a traceback.
    assert main(["status", "--addr", "127.0.0.1:1"]) == 1
    assert main(["cancel", "j-x", "--addr", "127.0.0.1:1"]) == 1
    assert main(["watch", "j-x", "--addr", "127.0.0.1:1"]) == 1
    assert main(["work", "--addr", "127.0.0.1:1"]) == 1
    err = capsys.readouterr().err
    assert "no repro service" in err


def test_submit_fails_cleanly_without_server(capsys):
    assert main(["submit", "--quick", "-n", "500",
                 "--addr", "127.0.0.1:1"]) == 1
    assert "no repro service" in capsys.readouterr().err


def test_figure_remote_falls_back_to_local(capsys):
    assert main(["figure", "fig06", "-n", "1000", "--quick",
                 "--remote", "127.0.0.1:1"]) == 0
    captured = capsys.readouterr()
    assert "running locally" in captured.err
    assert "atomic" in captured.out


def test_serve_submit_watch_roundtrip(capsys, tmp_path, monkeypatch):
    """`repro serve` wired end to end through the real CLI entry
    points: submit --watch, status, cancel, warm resubmit."""
    monkeypatch.setenv("REPRO_SERVICE_DIR", str(tmp_path / "queue"))
    from repro.harness import ResultStore
    from repro.service import JobQueue, SweepService
    from repro.service.worker import RemoteBackend, worker_loop
    from repro.service.api import ServiceClient
    import threading

    service = SweepService(queue=JobQueue(root=tmp_path / "queue"),
                           store=ResultStore(), port=0)
    service.start(reaper_interval=0.1)
    stop = threading.Event()
    worker = threading.Thread(
        target=worker_loop,
        kwargs=dict(
            backend=RemoteBackend(ServiceClient(service.address), host="t"),
            executor=lambda spec: {"ok": spec.scheme},
            poll=0.05, stop=stop.is_set),
        daemon=True)
    worker.start()
    try:
        addr = service.address
        assert main(["submit", "--quick", "-n", "640",
                     "--watch", "--addr", addr]) == 0
        out = capsys.readouterr().out
        assert "16 cells (16 new" in out
        assert "done  16/16" in out

        # Warm resubmission: all 16 cells answered from the store.
        assert main(["submit", "--quick", "-n", "640",
                     "--watch", "--addr", addr]) == 0
        assert "16 warm" in capsys.readouterr().out

        assert main(["status", "--addr", addr]) == 0
        overview = capsys.readouterr().out
        assert "16 done" in overview
        assert "host t" in overview
    finally:
        stop.set()
        service.stop()
        worker.join(5)
