"""Golden-model equivalence: the strongest end-to-end check on register
release.

The cycle simulator computes every correct-path result through *physical*
registers.  If any scheme frees a register too early, reallocation
corrupts a value and the final architectural state diverges from the
functional emulator.  Every scheme must match, on every workload shape,
under register starvation and heavy misprediction."""

import dataclasses

import pytest

from repro.frontend import final_state, run_program
from repro.isa import assemble
from repro.pipeline import Core, fast_test_config
from repro.rename.schemes import SCHEME_NAMES
from repro.workloads import PROFILES, synthesize

from tests.conftest import ALL_SOURCES

SCHEMES = list(SCHEME_NAMES)


def _check(program, config, max_instructions=6000):
    golden = final_state(program, max_instructions=max_instructions)
    trace = run_program(program, max_instructions=max_instructions)
    core = Core(config, trace)
    core.run()
    state = core.architectural_state()
    # ArchState.diff canonicalizes both sides with the same zero-dropping
    # helper the simulator uses, then compares registers, flags, and
    # memory in *both* directions.
    mismatches = state.diff(golden, limit=32)
    assert not mismatches, "\n".join(mismatches)
    core.check_conservation()
    return core


@pytest.mark.parametrize("scheme", SCHEMES)
@pytest.mark.parametrize("source", sorted(ALL_SOURCES))
def test_fixture_programs(scheme, source):
    program = assemble(ALL_SOURCES[source], name=source)
    _check(program, fast_test_config(rf_size=30, scheme=scheme))


@pytest.mark.parametrize("scheme", SCHEMES)
@pytest.mark.parametrize("rf_size", [26, 40, 64])
def test_register_pressure_sweep(scheme, rf_size, atomic_program):
    _check(atomic_program, fast_test_config(rf_size=rf_size, scheme=scheme))


@pytest.mark.parametrize("scheme", SCHEMES)
@pytest.mark.parametrize("predictor", ["always_taken", "always_not_taken", "tage"])
def test_under_heavy_misprediction(scheme, predictor, branchy_program):
    _check(branchy_program,
           fast_test_config(rf_size=26, scheme=scheme, predictor=predictor))


@pytest.mark.parametrize("scheme", ["atr", "combined"])
@pytest.mark.parametrize("delay", [0, 1, 2])
def test_redefine_delay_sweep(scheme, delay, atomic_program):
    config = dataclasses.replace(
        fast_test_config(rf_size=26, scheme=scheme), redefine_delay=delay
    )
    _check(atomic_program, config)


@pytest.mark.parametrize("scheme", SCHEMES)
@pytest.mark.parametrize("profile", sorted(PROFILES))
def test_synthetic_profiles(scheme, profile):
    program = synthesize(PROFILES[profile], iterations=6)
    _check(program, fast_test_config(rf_size=34, scheme=scheme))


@pytest.mark.parametrize("scheme", SCHEMES)
def test_narrow_counter(scheme, atomic_program):
    """A 2-bit consumer counter saturates constantly; must stay correct."""
    config = dataclasses.replace(
        fast_test_config(rf_size=26, scheme=scheme), counter_bits=2
    )
    _check(atomic_program, config)


@pytest.mark.parametrize("scheme", SCHEMES)
def test_kernel_slice(scheme):
    """A real suite kernel, starved and mispredicting."""
    from repro.workloads import builder_for

    program = builder_for("531.deepsjeng_r")(iterations=12)
    _check(program, fast_test_config(rf_size=28, scheme=scheme))
