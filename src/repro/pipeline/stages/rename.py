"""Rename/dispatch stage: SRT lookup, destination allocation, dispatch.

All structural stall causes live here; a blocked cycle is charged to the
first blocking cause (``empty``, ``rob``, ``rs``, ``lq``, ``sq``,
``freelist``), mirrored as ``rename_stall`` probe events.
"""

from __future__ import annotations

from ..rob import ROBEntry
from ..state import StoreRecord, store_word_addrs
from . import Stage
from .issue import enqueue_ready


class RenameStage(Stage):
    """Rename and dispatch up to rename width instructions per cycle."""

    name = "rename"

    def __init__(self, state):
        super().__init__(state)
        config = self.config
        self.width = config.rename_width
        self.rs_size = config.rs_size
        self.lq_size = config.lq_size
        self.sq_size = config.sq_size
        self.rob = state.rob
        self.scheme = state.scheme
        self.rename_unit = state.rename_unit
        self.checkpoints = state.checkpoints
        self.stats = state.stats
        self.waiters = state.waiters
        self.ptag_ready = state.ptag_ready
        self.stores = state.stores
        self.store_words = state.store_words

    def _stall(self, state, cause: str, cycle: int) -> None:
        probes = state.probes
        if probes is not None:
            for fn in probes.rename_stall:
                fn(cause, cycle)

    def run(self, state, cycle: int) -> None:
        renamed = 0
        stats = self.stats
        rename_unit = self.rename_unit
        fetch_queue = state.fetch_queue
        while renamed < self.width:
            fq_head = state.fq_head
            fetched = fetch_queue[fq_head] if fq_head < len(fetch_queue) else None
            if fetched is None or fetched.ready_cycle > cycle:
                if renamed == 0 and fetched is None:
                    stats.stall_empty += 1
                    self._stall(state, "empty", cycle)
                break
            instr = fetched.dyn.instr
            if self.rob.is_full:
                if renamed == 0:
                    stats.stall_rob += 1
                    self._stall(state, "rob", cycle)
                break
            if state.rs_used >= self.rs_size:
                if renamed == 0:
                    stats.stall_rs += 1
                    self._stall(state, "rs", cycle)
                break
            if instr.is_load and state.lq_used >= self.lq_size:
                if renamed == 0:
                    stats.stall_lq += 1
                    self._stall(state, "lq", cycle)
                break
            if instr.is_store and state.sq_used >= self.sq_size:
                if renamed == 0:
                    stats.stall_sq += 1
                    self._stall(state, "sq", cycle)
                break
            if not rename_unit.can_rename(instr):
                if renamed == 0:
                    stats.stall_freelist += 1
                    rename_unit.stall_cycles += 1
                    self._stall(state, "freelist", cycle)
                break
            state.fq_head += 1
            if state.fq_head > 4096:
                del fetch_queue[: state.fq_head]
                state.fq_head = 0
            self._rename_one(state, fetched, cycle)
            renamed += 1

    def _rename_one(self, state, fetched, cycle: int) -> None:
        dyn = fetched.dyn
        entry = ROBEntry(
            seq=dyn.seq,
            dyn=dyn,
            cycle_fetch=fetched.fetch_cycle,
            prediction=fetched.prediction,
            mispredicted=fetched.mispredicted,
        )
        entry.cycle_rename = cycle
        entry.src_ptags = self.rename_unit.lookup_sources(dyn.instr)
        probes = state.probes
        # Sources event fires before destination allocation (which could
        # legitimately recycle a ptag an unsafe scheme just freed) — the
        # sanitizer captures allocation epochs here.
        if probes is not None:
            for fn in probes.rename_sources:
                fn(entry, cycle)
        self.scheme.pre_rename(entry, cycle)
        entry.dests = self.rename_unit.allocate_dests(dyn.instr, cycle, dyn.seq)
        if probes is not None:
            for fn in probes.allocate:
                fn(entry, cycle)
        self.scheme.post_rename(entry, cycle)
        self.rob.append(entry)
        self.stats.renamed += 1
        if entry.wrong_path:
            self.stats.wrong_path_renamed += 1

        # Scheduling bookkeeping
        state.rs_used += 1
        instr = dyn.instr
        if instr.is_load:
            state.lq_used += 1
        if instr.is_store:
            state.sq_used += 1
            self.stores[entry.seq] = StoreRecord(entry.seq)
            state.store_order.append(entry.seq)
            for word in store_word_addrs(entry):
                self.store_words.setdefault(word, []).append(entry.seq)
        unready = 0
        ptag_ready = self.ptag_ready
        for file_cls, _slot, ptag in entry.src_ptags:
            if not ptag_ready[file_cls][ptag]:
                unready += 1
                self.waiters.setdefault((file_cls, ptag), []).append(entry)
        for record in entry.dests:
            ptag_ready[record.file][record.new_ptag] = False
        entry.unready_sources = unready
        if unready == 0:
            enqueue_ready(state, entry)

        # Checkpoint low-confidence branches (timing model only)
        if (
            instr.is_conditional_branch
            and fetched.prediction is not None
            and not fetched.prediction.confident
        ):
            entry.has_checkpoint = self.checkpoints.take(
                entry.seq, self.rename_unit.srt_snapshots()
            )
        if probes is not None:
            for fn in probes.rename:
                fn(entry, cycle)
