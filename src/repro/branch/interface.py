"""Branch predictor interfaces.

The fetch unit consults a :class:`DirectionPredictor` for conditional
branches, a :class:`TargetPredictor` (BTB / indirect predictor / RAS
composite) for targets, and a confidence estimate used to decide which
branches get an SRT checkpoint (paper section 4.2.1 checkpoints only
low-confidence branches).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional


@dataclass
class Prediction:
    """Outcome of predicting one control-flow instruction."""

    taken: bool
    target: Optional[int]
    confident: bool = True


class DirectionPredictor(abc.ABC):
    """Taken / not-taken predictor for conditional branches."""

    @abc.abstractmethod
    def predict(self, pc: int) -> bool:
        """Predicted direction for the branch at *pc*."""

    @abc.abstractmethod
    def update(self, pc: int, taken: bool) -> None:
        """Train with the resolved direction (called at execute)."""

    def confidence(self, pc: int) -> bool:
        """True if the prediction is high-confidence (default: always)."""
        return True

    def on_mispredict(self, pc: int, taken: bool) -> None:
        """Hook for global-history repair on a misprediction."""


class TargetPredictor(abc.ABC):
    """Predicts targets of taken control flow."""

    @abc.abstractmethod
    def predict(self, pc: int) -> Optional[int]:
        """Predicted target for *pc*, or ``None`` on a miss."""

    @abc.abstractmethod
    def update(self, pc: int, target: int) -> None:
        """Install / reinforce the resolved target."""


def saturate(value: int, delta: int, lo: int, hi: int) -> int:
    """Saturating counter update."""
    return max(lo, min(hi, value + delta))
