"""Physical-register free list with conservation checking.

The free list is the structure every release scheme ultimately serves:
registers leave it at rename and must come back exactly once — via commit
of the redefining instruction, via early release, or via the flush walk.
This implementation verifies that conservation on every operation, so any
double free or leak in a scheme fails loudly instead of silently corrupting
an experiment.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, List, Optional, Set

from .errors import DoubleFreeError, FreeListEmptyError


class FreeList:
    """FIFO free list over ptags ``0..capacity-1``.

    FIFO (rather than LIFO) order matches the per-way FIFO implementation
    sketched in paper section 4.2.1 and maximizes the reuse distance of a
    ptag, which makes use-after-free bugs *more* likely to corrupt state —
    exactly what we want a reproduction to detect.
    """

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._free = deque(range(capacity))
        self._free_set: Set[int] = set(range(capacity))
        self.total_allocations = 0
        self.total_frees = 0
        self.min_free_watermark = capacity

    def __len__(self) -> int:
        return len(self._free)

    @property
    def free_count(self) -> int:
        return len(self._free)

    @property
    def allocated_count(self) -> int:
        return self.capacity - len(self._free)

    def is_free(self, ptag: int) -> bool:
        return ptag in self._free_set

    def allocate(self) -> int:
        """Pop a free ptag; raises :class:`FreeListEmptyError` when empty."""
        if not self._free:
            raise FreeListEmptyError(
                f"free list empty after {self.total_allocations} allocations"
            )
        ptag = self._free.popleft()
        self._free_set.remove(ptag)
        self.total_allocations += 1
        if len(self._free) < self.min_free_watermark:
            self.min_free_watermark = len(self._free)
        return ptag

    def free(self, ptag: int) -> None:
        """Return *ptag*; raises :class:`DoubleFreeError` if already free."""
        if not 0 <= ptag < self.capacity:
            raise ValueError(f"ptag {ptag} out of range 0..{self.capacity - 1}")
        if ptag in self._free_set:
            raise DoubleFreeError(f"ptag {ptag} freed twice")
        self._free.append(ptag)
        self._free_set.add(ptag)
        self.total_frees += 1

    def free_many(self, ptags: Iterable[int]) -> None:
        for ptag in ptags:
            self.free(ptag)

    def check_conservation(self, live_ptags: Iterable[int]) -> None:
        """Assert free + live partitions the ptag space exactly.

        *live_ptags* is the caller's view of every allocated ptag (SRT
        mappings + in-flight allocations).  Raises AssertionError with a
        diagnostic on any leak or overlap.
        """
        live = set(live_ptags)
        overlap = live & self._free_set
        if overlap:
            raise AssertionError(f"ptags both live and free: {sorted(overlap)[:8]}")
        missing = set(range(self.capacity)) - live - self._free_set
        if missing:
            raise AssertionError(f"leaked ptags (neither live nor free): {sorted(missing)[:8]}")
