"""Functional emulator — the golden model.

Executes a :class:`~repro.isa.program.Program` architecturally (no timing)
and records the dynamic trace the cycle simulator replays.  The cycle
simulator's committed architectural state must match this emulator's final
state exactly, for every release scheme; the integration tests enforce
that equivalence, which is the strongest correctness check on ATR's early
release and flush-walk logic.

Value semantics live in :mod:`repro.isa.semantics` and are shared with the
cycle simulator's value-execution mode, so the two models cannot drift.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..isa import (
    NUM_INT_REGS,
    NUM_VEC_REGS,
    VEC_LANES,
    ArchReg,
    Opcode,
    Program,
    RegClass,
)
from ..isa.semantics import MASK64, branch_taken, compute
from .trace import DynamicInstruction, Trace

#: 8-byte words; vector memory operations touch VEC_LANES consecutive words.
WORD_BYTES = 8


def canonical_memory(memory: Dict[int, int]) -> Dict[int, int]:
    """Drop zero-valued words from a memory image.

    Loads from unwritten addresses return zero, so an explicit zero store
    and an untouched address are architecturally indistinguishable; every
    golden-model comparison must canonicalize *both* sides with this one
    helper, or a model that materializes zeros (the emulator) diverges
    spuriously from one that filters them (the cycle core).
    """
    return {addr: value for addr, value in memory.items() if value != 0}


@dataclass
class ArchState:
    """Architectural state snapshot: registers, flags, memory."""

    int_regs: Tuple[int, ...]
    vec_regs: Tuple[Tuple[int, ...], ...]
    flags: int
    memory: Dict[int, int] = field(default_factory=dict)

    def read(self, reg: ArchReg):
        if reg.cls is RegClass.FLAGS:
            return self.flags
        if reg.cls is RegClass.INT:
            return self.int_regs[reg.index]
        return self.vec_regs[reg.index]

    def canonicalize(self) -> "ArchState":
        """A copy whose memory has zero-valued words dropped."""
        return ArchState(
            int_regs=self.int_regs,
            vec_regs=self.vec_regs,
            flags=self.flags,
            memory=canonical_memory(self.memory),
        )

    def diff(self, other: "ArchState", limit: int = 8) -> List[str]:
        """Mismatches against *other*, as human-readable lines.

        Both sides are canonicalized first, so callers may pass raw
        states.  Returns at most *limit* lines (empty = equivalent).
        """
        mine, theirs = self.canonicalize(), other.canonicalize()
        out: List[str] = []
        for i, (a, b) in enumerate(zip(mine.int_regs, theirs.int_regs)):
            if a != b:
                out.append(f"r{i}: {a:#x} != {b:#x}")
        if mine.flags != theirs.flags:
            out.append(f"flags: {mine.flags:#x} != {theirs.flags:#x}")
        for i, (a, b) in enumerate(zip(mine.vec_regs, theirs.vec_regs)):
            if a != b:
                out.append(f"v{i}: {a} != {b}")
        for addr in sorted(set(mine.memory) | set(theirs.memory)):
            a = mine.memory.get(addr, 0)
            b = theirs.memory.get(addr, 0)
            if a != b:
                out.append(f"mem[{addr:#x}]: {a:#x} != {b:#x}")
        if len(out) > limit:
            out = out[:limit] + [f"... and {len(out) - limit} more mismatches"]
        return out


def canonical_state(state: ArchState) -> ArchState:
    """Canonical form of *state* for golden-model comparison."""
    return state.canonicalize()


class EmulationError(RuntimeError):
    """Raised on architecturally impossible situations (bad PC, etc.)."""


class Emulator:
    """Architectural executor for the reproduction ISA.

    All integer arithmetic is modulo 2**64; division by zero yields zero
    (the *possibility* of the exception is what matters for atomic-region
    classification, and the paper's simulated SimPoints likewise take no
    real faults).  Loads from unwritten memory return zero.
    """

    def __init__(self, program: Program):
        self.program = program
        self.int_regs = [0] * NUM_INT_REGS
        self.vec_regs = [(0,) * VEC_LANES for _ in range(NUM_VEC_REGS)]
        self.flags = 0
        self.memory: Dict[int, int] = dict(program.data)
        self.pc = 0
        self.halted = False
        self.executed = 0

    # -- state access --------------------------------------------------------
    def snapshot(self) -> ArchState:
        return ArchState(
            int_regs=tuple(self.int_regs),
            vec_regs=tuple(self.vec_regs),
            flags=self.flags,
            memory=dict(self.memory),
        )

    def read_reg(self, reg: ArchReg):
        if reg.cls is RegClass.FLAGS:
            return self.flags
        if reg.cls is RegClass.INT:
            return self.int_regs[reg.index]
        return self.vec_regs[reg.index]

    def write_reg(self, reg: ArchReg, value) -> None:
        if reg.cls is RegClass.FLAGS:
            self.flags = int(value) & MASK64
        elif reg.cls is RegClass.INT:
            self.int_regs[reg.index] = int(value) & MASK64
        else:
            self.vec_regs[reg.index] = tuple(int(v) & MASK64 for v in value)

    def _load_word(self, addr: int) -> int:
        return self.memory.get(addr & MASK64, 0)

    def _store_word(self, addr: int, value: int) -> None:
        self.memory[addr & MASK64] = value & MASK64

    # -- execution -------------------------------------------------------------
    def step(self) -> Optional[DynamicInstruction]:
        """Execute one instruction; return its dynamic record, or ``None``
        if the machine has halted."""
        if self.halted:
            return None
        instr = self.program.at(self.pc)
        if instr is None:
            raise EmulationError(f"pc {self.pc} outside program {self.program.name!r}")

        pc = self.pc
        op = instr.opcode
        taken = False
        mem_addr: Optional[int] = None
        next_pc = pc + 1

        if op is Opcode.HALT:
            self.halted = True
            next_pc = pc
        elif op is Opcode.NOP:
            pass
        elif op is Opcode.LD:
            mem_addr = (self.read_reg(instr.srcs[0]) + instr.imm) & MASK64
            self.write_reg(instr.dests[0], self._load_word(mem_addr))
        elif op is Opcode.ST:
            mem_addr = (self.read_reg(instr.srcs[1]) + instr.imm) & MASK64
            self._store_word(mem_addr, self.read_reg(instr.srcs[0]))
        elif op is Opcode.VLD:
            mem_addr = (self.read_reg(instr.srcs[0]) + instr.imm) & MASK64
            lanes = tuple(self._load_word(mem_addr + i * WORD_BYTES) for i in range(VEC_LANES))
            self.write_reg(instr.dests[0], lanes)
        elif op is Opcode.VST:
            mem_addr = (self.read_reg(instr.srcs[1]) + instr.imm) & MASK64
            for i, lane in enumerate(self.read_reg(instr.srcs[0])):
                self._store_word(mem_addr + i * WORD_BYTES, lane)
        elif op in (Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE):
            taken = branch_taken(op, self.flags)
            if taken:
                next_pc = instr.target
        elif op is Opcode.JMP:
            taken = True
            next_pc = instr.target
        elif op is Opcode.CALL:
            taken = True
            self.write_reg(instr.dests[0], pc + 1)
            next_pc = instr.target
        elif op in (Opcode.JR, Opcode.RET):
            taken = True
            next_pc = self.read_reg(instr.srcs[0]) & MASK64
        else:
            srcs = [self.read_reg(s) for s in instr.srcs]
            self.write_reg(instr.dests[0], compute(instr, srcs))

        record = DynamicInstruction(
            seq=self.executed,
            pc=pc,
            instr=instr,
            next_pc=next_pc,
            taken=taken,
            mem_addr=mem_addr,
        )
        self.pc = next_pc
        self.executed += 1
        return record

    def run(self, max_instructions: int = 1_000_000) -> Trace:
        """Run until HALT or *max_instructions*; return the trace."""
        entries = []
        for _ in range(max_instructions):
            record = self.step()
            if record is None:
                break
            entries.append(record)
            if record.instr.is_halt:
                break
        return Trace(program=self.program, entries=entries)


def run_program(program: Program, max_instructions: int = 1_000_000) -> Trace:
    """Convenience: emulate *program* from reset and return its trace."""
    return Emulator(program).run(max_instructions=max_instructions)


def final_state(program: Program, max_instructions: int = 1_000_000) -> ArchState:
    """Architectural state after emulating *program*."""
    emulator = Emulator(program)
    emulator.run(max_instructions=max_instructions)
    return emulator.snapshot()
