"""Experiment harness: one module per paper figure, plus the runner.

Each ``figNN`` module exposes ``run(...) -> result`` where the result has
a ``render()`` producing the same rows/series the paper reports, with
measured-vs-paper comparison lines.

Figure modules are *discovered*, not imported by hand: every
``fig*``/``sec*`` module in this package is lazily registered in the
:data:`FIGURES` registry (the module imports on first use), and
out-of-tree figures can join through the plugin hook
(:mod:`repro.registry`) by registering any object with a
``run(...) -> result`` callable.  :data:`ALL_FIGURES` is the same
registry under its historical name; ``repro figure`` and ``repro list
figures`` both read it.
"""

import importlib
import pkgutil
import re

from ..registry import Registry
from . import expectations
from .report import compare_line, format_table, pct, shorten
from .runner import (
    DETAILED,
    CellResult,
    CellSpec,
    RegionSpec,
    TierPolicy,
    cell_spec,
    clear_result_cache,
    default_fp_suite,
    default_instructions,
    default_int_suite,
    geomean,
    mean,
    prime_cells,
    prime_regions,
    region_report,
    run_cell,
    speedup,
    suite_speedup,
)

#: Figure registry: name -> module-like object with ``run(...)``.
FIGURES: Registry = Registry("figure", doc="paper figure generators")


def _lazy_import(name: str):
    return lambda: importlib.import_module(f".{name}", __package__)


for _info in pkgutil.iter_modules(__path__):
    if re.fullmatch(r"(fig|sec)\d+", _info.name):
        FIGURES.register_lazy(_info.name, _lazy_import(_info.name))

#: Historical name for the figure catalog (the registry itself, which is
#: mapping-shaped: ``name in ALL_FIGURES``, iteration, ``[name]``).
ALL_FIGURES = FIGURES


def __getattr__(name):
    # `repro.experiments.fig06` keeps working without eagerly importing
    # every figure module at package import.
    if name in FIGURES:
        return FIGURES.get(name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "run_cell", "CellResult", "CellSpec", "RegionSpec", "cell_spec",
    "TierPolicy", "DETAILED",
    "region_report", "clear_result_cache", "prime_cells", "prime_regions",
    "geomean", "mean", "speedup", "suite_speedup",
    "default_instructions", "default_int_suite", "default_fp_suite",
    "format_table", "compare_line", "pct", "shorten",
    "expectations", "ALL_FIGURES", "FIGURES",
]
